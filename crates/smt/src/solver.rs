//! Solver facade: scoped assertions, model extraction, solve statistics,
//! and the engine's two checking disciplines — fresh-per-check for
//! model-bearing queries, warm incremental spine solving for feasibility
//! verdicts.
//!
//! This is the interface the symbolic executor talks to — the analogue of
//! the paper's "Z3 configured with incremental solving". Two kinds of query
//! coexist behind one API, and the split is what reconciles incremental
//! speed with deterministic output:
//!
//! * [`Solver::check_assuming`] (and [`Solver::check`]) are **model-bearing
//!   and fresh-per-check**: the cone of the constraint set is encoded into
//!   a brand-new SAT instance, solved, and kept for model extraction. CNF
//!   variables are numbered by the blaster's structural traversal of that
//!   cone alone, so the model is a pure function of the constraint set —
//!   never of what this worker (or any other) solved before. Every byte of
//!   an emitted test descends from one of these checks, which is what keeps
//!   suites byte-identical across job counts *and across solver modes*.
//!
//! * [`Solver::check_feasible`] is **verdict-only**. In
//!   [`SolverMode::Incremental`] (the default) the solver keeps one warm
//!   [`SatSolver`] + [`Blaster`] pair whose clause database mirrors the
//!   worker's DFS spine. Pushing a branch constraint blasts only its new
//!   cone; the constraint's blasted root literal doubles as its
//!   **activation literal**: the Tseitin definitions enter the database
//!   unguarded (definitional clauses are satisfiable on their own and never
//!   constrain the original variables), and the constraint is *enforced*
//!   only while its root literal is passed as a solve assumption.
//!   Backtracking therefore retracts by dropping literals from the
//!   assumption set — no clause deletion, no rebuild. Sat/Unsat are
//!   semantic facts about the constraint set, so sharing a clause database
//!   across checks cannot change them; it only changes how fast they are
//!   reached.
//!
//! The old fresh-per-check-everywhere design was motivated by a real
//! problem: a monotonically growing instance forces every solve to assign
//! every Tseitin variable ever created by any path, so solving scaled with
//! the *total* work of the run. The warm core bounds that instead of
//! avoiding it: per-root cone costs are tracked, and when the database
//! grows past a small multiple of the current check's live cone (retired
//! subtrees' garbage dominating), the core is **rebuilt** from the current
//! constraint set — the same cone restriction Z3's incremental mode
//! performs internally, made explicit and deterministic.
//!
//! In front of the warm blaster sits a term-level simplification pass
//! ([`crate::simplify`]): constant folding over the conjunction, equality
//! substitution along the trail, and — because rewritten terms re-intern
//! into the hash-consed pool — a blast cache keyed on *simplified*
//! structure. A constraint that folds to constant false decides the check
//! with no SAT call at all. The pass preserves satisfiability, not models,
//! which is exactly why it is confined to the verdict-only path.
//!
//! Fresh mode is still used, even under [`SolverMode::Incremental`], when:
//!
//! * the query is model-bearing (`check`/`check_assuming`) — emission,
//!   concolic resolution, and random-proposal re-checks;
//! * a per-query budget is set — budgeted Unknown verdicts depend on search
//!   history, and a warm core would make them schedule-dependent;
//! * a phase-seed retry is active (the engine's rotate-and-retry after
//!   Unknown) — the scrambled phases must apply to a history-free search;
//! * the engine recovers from an isolated path panic ([`Solver::reset_warm`])
//!   — the warm core may have been abandoned mid-push.
//!
//! Workers can pool what they learn: bounded learnt clauses whose literals
//! all map to *shared atoms* (a constraint root or a pool-variable bit) are
//! exported to a [`ClauseExchange`] and folded into sibling solvers. Learnt
//! clauses are consequences of the clause database alone — assumptions
//! enter conflict analysis as decisions and are never resolved on — and the
//! warm database contains only definitional axioms, so every exported
//! clause is valid over the term semantics and sound to import anywhere.
//! Imports influence only warm search order, never verdicts, so fork-trail
//! determinism survives. (See DESIGN.md "Incremental spine solving".)

use crate::blast::Blaster;
use crate::eval::Assignment;
use crate::sat::{Lit, SatResult, SatSolver, SatVar, SolveBudget};
use crate::simplify::{simplify_conjunction, Simplified, SimplifyStats};
use crate::term::{TermId, TermPool, VarId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a `check` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckResult {
    Sat,
    Unsat,
    /// The per-query budget was exhausted before a verdict. The paper's
    /// P4Testgen gets the same tri-state from Z3 timeouts and abandons the
    /// path; callers here must do likewise (a model after Unknown is
    /// meaningless — every unfixed variable reads as zero).
    Unknown,
}

/// How feasibility checks are solved. Model-bearing checks are always
/// fresh-per-check regardless of mode (see the module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SolverMode {
    /// Every check builds a fresh SAT instance (the pre-incremental
    /// behavior; also the reference the determinism suite compares against).
    Fresh,
    /// Feasibility checks reuse a warm per-worker SAT core along the DFS
    /// spine (the default).
    #[default]
    Incremental,
}

impl SolverMode {
    /// Parse a CLI/env spelling.
    pub fn parse(s: &str) -> Option<SolverMode> {
        match s {
            "fresh" => Some(SolverMode::Fresh),
            "incremental" => Some(SolverMode::Incremental),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            SolverMode::Fresh => "fresh",
            SolverMode::Incremental => "incremental",
        }
    }
}

/// Upper bounds (inclusive) for the conflicts-per-check histogram in
/// [`SolverStats`]; an implicit overflow bucket follows the last bound.
/// `le=0` is its own bucket because conflict-free checks are the common
/// case on packet-program path constraints — the histogram's whole point
/// is to show how heavy that head is versus the hard tail.
pub const CONFLICTS_PER_CHECK_BOUNDS: [u64; 8] = [0, 1, 2, 4, 16, 64, 256, 1024];

/// Upper bounds (inclusive) for the per-check spine-reuse histograms in
/// [`IncrementalStats`] (assertions reused from the warm core vs newly
/// blasted); an implicit overflow bucket follows the last bound.
pub const SPINE_PER_CHECK_BOUNDS: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// Cumulative timing and counter statistics, read by the Fig. 7 harness and
/// folded into the metrics registry by the exploration engine.
#[derive(Default, Clone, Debug)]
pub struct SolverStats {
    pub checks: u64,
    pub sat_results: u64,
    pub unsat_results: u64,
    /// Checks that exhausted their budget without a verdict.
    pub unknown_results: u64,
    /// Wall time spent inside `check` (bit-blasting + SAT search).
    pub solve_time: Duration,
    /// Wall time spent purely in the SAT search.
    pub sat_time: Duration,
    /// Non-cumulative histogram of SAT conflicts per check: cell `i` counts
    /// checks with `conflicts <= CONFLICTS_PER_CHECK_BOUNDS[i]`; the final
    /// cell is the overflow. Per-check conflict deltas are exact in both
    /// modes (warm cores snapshot their counters around each solve).
    pub conflicts_per_check_hist: [u64; CONFLICTS_PER_CHECK_BOUNDS.len() + 1],
}

/// Counters for the incremental layer (warm spine core, simplifier, blast
/// cache, cross-worker clause exchange), folded into the metrics registry
/// and `--summary-json` by the exploration engine.
#[derive(Default, Clone, Debug)]
pub struct IncrementalStats {
    /// Feasibility checks answered by the warm spine core.
    pub warm_checks: u64,
    /// Feasibility checks that fell back to a fresh instance while in
    /// incremental mode (budgeted query, phase-seed retry).
    pub fresh_fallbacks: u64,
    /// Warm-core rebuilds triggered by the garbage-growth policy (or by
    /// defensive recovery).
    pub rebuilds: u64,
    /// Spine constraints whose encoding was reused from the warm core.
    pub roots_reused: u64,
    /// Spine constraints blasted for the first time (or after a rebuild).
    pub roots_blasted: u64,
    /// Per-check histograms of the two counters above (bounds:
    /// [`SPINE_PER_CHECK_BOUNDS`], final cell overflow).
    pub reused_per_check_hist: [u64; SPINE_PER_CHECK_BOUNDS.len() + 1],
    pub blasted_per_check_hist: [u64; SPINE_PER_CHECK_BOUNDS.len() + 1],
    /// Blaster term-cache hits/misses, across fresh and warm instances.
    pub blast_cache_hits: u64,
    pub blast_cache_misses: u64,
    /// Term-simplification counters (warm path only).
    pub simplify: SimplifyStats,
    /// Learnt clauses exported to / imported from the [`ClauseExchange`].
    pub learnt_exported: u64,
    pub learnt_imported: u64,
    /// Exchange clauses skipped on import (an atom not blasted locally).
    pub learnt_import_skipped: u64,
}

impl IncrementalStats {
    pub fn absorb(&mut self, other: &IncrementalStats) {
        self.warm_checks += other.warm_checks;
        self.fresh_fallbacks += other.fresh_fallbacks;
        self.rebuilds += other.rebuilds;
        self.roots_reused += other.roots_reused;
        self.roots_blasted += other.roots_blasted;
        for (t, o) in
            self.reused_per_check_hist.iter_mut().zip(other.reused_per_check_hist.iter())
        {
            *t += o;
        }
        for (t, o) in
            self.blasted_per_check_hist.iter_mut().zip(other.blasted_per_check_hist.iter())
        {
            *t += o;
        }
        self.blast_cache_hits += other.blast_cache_hits;
        self.blast_cache_misses += other.blast_cache_misses;
        self.simplify.absorb(&other.simplify);
        self.learnt_exported += other.learnt_exported;
        self.learnt_imported += other.learnt_imported;
        self.learnt_import_skipped += other.learnt_import_skipped;
    }
}

// ---- cross-worker learnt-clause exchange --------------------------------

/// Maximum literals in an exchanged clause. Short clauses prune the most
/// per byte; long ones rarely transfer.
const MAX_SHARED_CLAUSE_LITS: usize = 8;

/// Cap on the exchange pool. Once full, further exports are dropped — the
/// pool is an accelerator, not a log.
const MAX_SHARED_POOL: usize = 4096;

/// A worker-independent SAT atom: CNF variable numbering is per-worker, so
/// clauses cross workers in terms of things both sides can name — the root
/// of a blasted constraint term, or one bit of a pool variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum SharedVar {
    /// The root literal of a blasted 1-bit term.
    TermRoot(TermId),
    /// Bit `i` (LSB-first) of a pool variable.
    VarBit(VarId, u32),
}

/// A literal over a [`SharedVar`]; `positive` means "the atom is true".
#[derive(Clone, Copy, Debug)]
struct SharedLit {
    var: SharedVar,
    positive: bool,
}

#[derive(Clone, Debug)]
struct SharedClause {
    /// Exporting worker, so importers skip their own clauses.
    source: u32,
    lits: Vec<SharedLit>,
}

/// Bounded cross-worker pool of learnt clauses. Append-only: the published
/// length is the epoch, and each warm core keeps a cursor of how far it has
/// imported — so every clause is considered exactly once per core, in
/// publication order. Everything in the pool is a consequence of Tseitin
/// definitional axioms (see the module docs), hence valid over the term
/// semantics and sound to fold into any worker's core.
pub struct ClauseExchange {
    clauses: Mutex<Vec<SharedClause>>,
    /// Published length, readable without the lock (the import fast path).
    published: AtomicUsize,
}

impl Default for ClauseExchange {
    fn default() -> Self {
        Self::new()
    }
}

impl ClauseExchange {
    pub fn new() -> Self {
        ClauseExchange { clauses: Mutex::new(Vec::new()), published: AtomicUsize::new(0) }
    }

    /// Current epoch (published clause count).
    pub fn epoch(&self) -> usize {
        self.published.load(Ordering::Acquire)
    }

    /// Append a batch, honoring the pool cap. Returns how many were kept.
    fn publish(&self, source: u32, batch: Vec<Vec<SharedLit>>) -> u64 {
        if batch.is_empty() {
            return 0;
        }
        let mut g = self.clauses.lock();
        let mut added = 0u64;
        for lits in batch {
            if g.len() >= MAX_SHARED_POOL {
                break;
            }
            g.push(SharedClause { source, lits });
            added += 1;
        }
        self.published.store(g.len(), Ordering::Release);
        added
    }

    /// Clauses published since `cursor` (cloned out to keep the lock short).
    fn fetch_since(&self, cursor: usize) -> Vec<SharedClause> {
        let published = self.published.load(Ordering::Acquire);
        if published <= cursor {
            return Vec::new();
        }
        let g = self.clauses.lock();
        g[cursor..published.min(g.len())].to_vec()
    }
}

// ---- the warm spine core ------------------------------------------------

/// Rebuild when the database holds more than this multiple of the current
/// check's live-cone variables (plus slack) — retired subtrees' Tseitin
/// garbage would otherwise make every solve pay for the whole run.
const REBUILD_GROWTH_FACTOR: u64 = 3;
const REBUILD_SLACK_VARS: u64 = 512;

/// One worker's warm SAT core: solver, blaster, and the spine bookkeeping.
struct WarmCore {
    sat: SatSolver,
    blaster: Blaster,
    /// Activation (root) literal per constraint term ever pushed.
    root_lits: HashMap<TermId, Lit>,
    /// SAT variables created while blasting each root's cone — shared
    /// subterms are attributed to the first root that reached them. The
    /// sum over a check's roots estimates its live cone for the rebuild
    /// policy.
    root_cost: HashMap<TermId, u64>,
    /// Local CNF variable -> shared atom (+ the polarity of the local
    /// literal that means "atom true").
    shared_of: HashMap<SatVar, (SharedVar, bool)>,
    /// Shared atom -> the local literal meaning "atom true".
    local_of: HashMap<SharedVar, Lit>,
    /// High-water mark into the blaster's encoded-variable log.
    var_log_cursor: usize,
    /// High-water mark into the SAT clause array for learnt-clause export.
    export_cursor: usize,
    /// Exchange epoch already imported.
    import_cursor: usize,
}

impl WarmCore {
    fn new() -> Self {
        let mut sat = SatSolver::new();
        let blaster = Blaster::new(&mut sat);
        WarmCore {
            sat,
            blaster,
            root_lits: HashMap::new(),
            root_cost: HashMap::new(),
            shared_of: HashMap::new(),
            local_of: HashMap::new(),
            var_log_cursor: 0,
            export_cursor: 0,
            import_cursor: 0,
        }
    }

    /// Get-or-blast the activation literal for a constraint root. Returns
    /// `(lit, reused)`.
    fn root_lit(&mut self, pool: &TermPool, t: TermId) -> (Lit, bool) {
        if let Some(&l) = self.root_lits.get(&t) {
            return (l, true);
        }
        let vars_before = self.sat.num_vars() as u64;
        let l = self.blaster.assertion_lit(&mut self.sat, pool, t);
        let cost = (self.sat.num_vars() as u64 - vars_before).max(1);
        self.root_lits.insert(t, l);
        self.root_cost.insert(t, cost);
        self.shared_of.entry(l.var()).or_insert((SharedVar::TermRoot(t), l.is_positive()));
        self.local_of.entry(SharedVar::TermRoot(t)).or_insert(l);
        (l, false)
    }

    /// Register shared atoms for pool variables encoded since last call.
    fn register_new_var_bits(&mut self) {
        while self.var_log_cursor < self.blaster.encoded_vars().len() {
            let v = self.blaster.encoded_vars()[self.var_log_cursor];
            self.var_log_cursor += 1;
            let Some(bits) = self.blaster.bits_of_var(v) else { continue };
            let bits: Vec<SatVar> = bits.to_vec();
            for (i, sv) in bits.into_iter().enumerate() {
                let atom = SharedVar::VarBit(v, i as u32);
                self.shared_of.entry(sv).or_insert((atom, true));
                self.local_of.entry(atom).or_insert(Lit::positive(sv));
            }
        }
    }

    /// Export bounded learnt clauses whose literals all map to shared atoms.
    fn export(&mut self, ex: &ClauseExchange, source: u32) -> u64 {
        let n = self.sat.num_clauses();
        let mut batch: Vec<Vec<SharedLit>> = Vec::new();
        for i in self.export_cursor..n {
            let Some(lits) = self.sat.learnt_lits(i) else { continue };
            if lits.len() > MAX_SHARED_CLAUSE_LITS {
                continue;
            }
            let mut shared = Vec::with_capacity(lits.len());
            let mut mappable = true;
            for &l in lits {
                match self.shared_of.get(&l.var()) {
                    Some(&(atom, reg_pos)) => shared
                        .push(SharedLit { var: atom, positive: l.is_positive() == reg_pos }),
                    None => {
                        mappable = false;
                        break;
                    }
                }
            }
            if mappable {
                batch.push(shared);
            }
        }
        self.export_cursor = n;
        ex.publish(source, batch)
    }

    /// Fold in exchange clauses published since this core's last import.
    /// Clauses from `me` or with locally unknown atoms are skipped (the
    /// epoch cursor still advances — each clause is considered once).
    /// Returns `(imported, skipped)`.
    fn import(&mut self, ex: &ClauseExchange, me: u32) -> (u64, u64) {
        let epoch = ex.epoch();
        if epoch <= self.import_cursor {
            return (0, 0);
        }
        let batch = ex.fetch_since(self.import_cursor);
        self.import_cursor = epoch;
        let mut imported = 0u64;
        let mut skipped = 0u64;
        let mut local: Vec<Lit> = Vec::new();
        for sc in &batch {
            if sc.source == me {
                continue;
            }
            local.clear();
            let mut mappable = true;
            for sl in &sc.lits {
                match self.local_of.get(&sl.var) {
                    Some(&base) => {
                        local.push(if sl.positive { base } else { base.negate() })
                    }
                    None => {
                        mappable = false;
                        break;
                    }
                }
            }
            if !mappable {
                skipped += 1;
                continue;
            }
            self.sat.add_clause(&local);
            imported += 1;
            if !self.sat.is_ok() {
                // A level-0 conflict from a valid clause is impossible over
                // a definitional database; if it ever happens the caller
                // rebuilds defensively.
                break;
            }
        }
        (imported, skipped)
    }
}

/// Bitvector solver with scoped assertions.
pub struct Solver {
    /// Terms asserted, partitioned into scopes by `scope_marks`.
    asserted_terms: Vec<TermId>,
    scope_marks: Vec<usize>,
    /// The SAT instance and blaster from the most recent *model-bearing*
    /// check (kept for model extraction).
    last: Option<(SatSolver, Blaster)>,
    /// Accumulated SAT-core statistics across all checks.
    sat_totals: crate::sat::SatStats,
    /// Per-query resource budget (unlimited by default).
    budget: SolveBudget,
    /// Initial-phase scramble seed for the next checks (0 = default phases).
    phase_seed: u64,
    /// Feasibility-check discipline (model-bearing checks ignore this).
    mode: SolverMode,
    /// The warm spine core, lazily created on the first warm check.
    warm: Option<WarmCore>,
    /// Cross-worker learnt-clause pool, when the engine attached one.
    exchange: Option<Arc<ClauseExchange>>,
    /// This solver's id on the exchange (skip self-imports).
    worker_id: u32,
    pub stats: SolverStats,
    pub inc_stats: IncrementalStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    pub fn new() -> Self {
        Solver {
            asserted_terms: Vec::new(),
            scope_marks: Vec::new(),
            last: None,
            sat_totals: crate::sat::SatStats::default(),
            budget: SolveBudget::UNLIMITED,
            phase_seed: 0,
            mode: SolverMode::default(),
            warm: None,
            exchange: None,
            worker_id: 0,
            stats: SolverStats::default(),
            inc_stats: IncrementalStats::default(),
        }
    }

    /// Set the per-query resource budget applied to every subsequent check.
    /// Budget exhaustion surfaces as [`CheckResult::Unknown`].
    pub fn set_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    pub fn budget(&self) -> SolveBudget {
        self.budget
    }

    /// Select the feasibility-check discipline (see [`SolverMode`]).
    pub fn set_mode(&mut self, mode: SolverMode) {
        self.mode = mode;
    }

    pub fn mode(&self) -> SolverMode {
        self.mode
    }

    /// Attach a cross-worker learnt-clause exchange; `worker_id` must be
    /// unique among the solvers sharing it.
    pub fn set_exchange(&mut self, exchange: Arc<ClauseExchange>, worker_id: u32) {
        self.exchange = Some(exchange);
        self.worker_id = worker_id;
    }

    /// Discard the warm spine core. The engine calls this after recovering
    /// from an isolated path panic — the core may have been abandoned
    /// mid-push, and the next warm check deterministically rebuilds it from
    /// that check's own constraint set.
    pub fn reset_warm(&mut self) {
        self.warm = None;
    }

    /// Scramble initial decision phases for subsequent checks (0 restores
    /// the default). Used to retry an Unknown query along a different
    /// search order; while a non-zero seed is set, feasibility checks run
    /// fresh-per-check so the scramble applies to a history-free search and
    /// stays fully deterministic.
    pub fn set_phase_seed(&mut self, seed: u64) {
        self.phase_seed = seed;
    }

    /// Open a new assertion scope.
    pub fn push(&mut self) {
        self.scope_marks.push(self.asserted_terms.len());
    }

    /// Discard all assertions added since the matching `push`.
    pub fn pop(&mut self) {
        let mark = self.scope_marks.pop().expect("pop without matching push");
        self.asserted_terms.truncate(mark);
    }

    /// Current scope depth.
    pub fn depth(&self) -> usize {
        self.scope_marks.len()
    }

    /// Assert a 1-bit term in the current scope.
    pub fn assert(&mut self, pool: &TermPool, t: TermId) {
        assert_eq!(pool.width(t), 1, "assertions must be 1-bit terms");
        self.asserted_terms.push(t);
    }

    /// Check satisfiability of all assertions in all scopes.
    pub fn check(&mut self, pool: &TermPool) -> CheckResult {
        self.check_assuming(pool, &[])
    }

    /// Model-bearing check with extra transient assumptions (1-bit terms).
    /// Always fresh-per-check: the verdict *and the model* are a pure
    /// function of the constraint set (plus budget and phase seed) — this
    /// is the only check whose model may be read afterwards.
    pub fn check_assuming(&mut self, pool: &TermPool, extra: &[TermId]) -> CheckResult {
        let t0 = Instant::now();
        let mut sat = SatSolver::new();
        let mut blaster = Blaster::new(&mut sat);
        let mut ok = true;
        for &t in self.asserted_terms.iter().chain(extra) {
            debug_assert_eq!(pool.width(t), 1, "assumptions must be 1-bit terms");
            let l = blaster.assertion_lit(&mut sat, pool, t);
            if !sat.add_clause(&[l]) {
                ok = false;
                break;
            }
        }
        let t1 = Instant::now();
        let res = if ok {
            sat.seed_phases(self.phase_seed);
            sat.solve_budgeted(&[], &self.budget)
        } else {
            SatResult::Unsat
        };
        self.stats.sat_time += t1.elapsed();
        self.stats.solve_time += t0.elapsed();
        self.stats.checks += 1;
        self.stats.conflicts_per_check_hist
            [CONFLICTS_PER_CHECK_BOUNDS.partition_point(|&b| b < sat.stats.conflicts)] += 1;
        self.inc_stats.blast_cache_hits += blaster.stats.cache_hits;
        self.inc_stats.blast_cache_misses += blaster.stats.cache_misses;
        accumulate(&mut self.sat_totals, &sat.stats);
        self.last = Some((sat, blaster));
        self.count_result(res)
    }

    /// Verdict-only feasibility check of `asserted ∧ extra`. In incremental
    /// mode (with no budget and no phase-seed retry active) the query runs
    /// on the warm spine core; otherwise it behaves exactly like
    /// [`Solver::check_assuming`]. The model state afterwards is
    /// **unspecified** — callers needing a model must issue a model-bearing
    /// check.
    pub fn check_feasible(&mut self, pool: &TermPool, extra: &[TermId]) -> CheckResult {
        let warm_eligible = self.mode == SolverMode::Incremental
            && self.budget.is_unlimited()
            && self.phase_seed == 0;
        if !warm_eligible {
            if self.mode == SolverMode::Incremental {
                self.inc_stats.fresh_fallbacks += 1;
            }
            return self.check_assuming(pool, extra);
        }
        self.check_warm(pool, extra)
    }

    fn check_warm(&mut self, pool: &TermPool, extra: &[TermId]) -> CheckResult {
        let t0 = Instant::now();
        self.stats.checks += 1;
        self.inc_stats.warm_checks += 1;
        // Term-level simplification over the whole conjunction. A constant-
        // false residue is a verdict with no SAT work at all.
        let all: Vec<TermId> =
            self.asserted_terms.iter().chain(extra).copied().collect();
        let roots = match simplify_conjunction(pool, &all, &mut self.inc_stats.simplify) {
            Simplified::False => {
                self.stats.conflicts_per_check_hist[0] += 1;
                self.stats.solve_time += t0.elapsed();
                return self.count_result(SatResult::Unsat);
            }
            Simplified::Constraints(cs) => cs,
        };
        let mut core = match self.warm.take() {
            Some(w) if w.sat.is_ok() => w,
            _ => WarmCore::new(),
        };
        // Rebuild policy: estimate this check's live cone from the recorded
        // per-root costs; when the database has grown well past it, the
        // garbage from retired subtrees dominates and a rebuild makes every
        // subsequent solve proportional to the live spine again.
        let live: u64 = roots.iter().filter_map(|t| core.root_cost.get(t)).sum();
        let total = core.sat.num_vars() as u64;
        if !core.root_lits.is_empty()
            && total > live.saturating_mul(REBUILD_GROWTH_FACTOR) + REBUILD_SLACK_VARS
        {
            self.inc_stats.rebuilds += 1;
            core = WarmCore::new();
        }
        // Advance the spine: reuse already-pushed constraints, blast only
        // the new cones. Each root literal is the constraint's activation
        // literal, enforced by passing it as an assumption below.
        let blast_hits0 = core.blaster.stats.cache_hits;
        let blast_miss0 = core.blaster.stats.cache_misses;
        let mut assumptions = Vec::with_capacity(roots.len());
        let mut reused = 0u64;
        let mut blasted = 0u64;
        for &c in &roots {
            let (l, hit) = core.root_lit(pool, c);
            if hit {
                reused += 1;
            } else {
                blasted += 1;
            }
            assumptions.push(l);
        }
        core.register_new_var_bits();
        self.inc_stats.roots_reused += reused;
        self.inc_stats.roots_blasted += blasted;
        self.inc_stats.reused_per_check_hist
            [SPINE_PER_CHECK_BOUNDS.partition_point(|&b| b < reused)] += 1;
        self.inc_stats.blasted_per_check_hist
            [SPINE_PER_CHECK_BOUNDS.partition_point(|&b| b < blasted)] += 1;
        self.inc_stats.blast_cache_hits += core.blaster.stats.cache_hits - blast_hits0;
        self.inc_stats.blast_cache_misses += core.blaster.stats.cache_misses - blast_miss0;
        // Fold in what siblings learned since we last looked.
        if let Some(ex) = self.exchange.clone() {
            let (imported, skipped) = core.import(&ex, self.worker_id);
            self.inc_stats.learnt_imported += imported;
            self.inc_stats.learnt_import_skipped += skipped;
        }
        if !core.sat.is_ok() {
            // Defensive: the definitional database can never conflict at
            // level 0; if it somehow did, rebuild and re-push this check's
            // roots so the verdict stays correct.
            self.inc_stats.rebuilds += 1;
            core = WarmCore::new();
            assumptions.clear();
            for &c in &roots {
                assumptions.push(core.root_lit(pool, c).0);
            }
            core.register_new_var_bits();
        }
        let t1 = Instant::now();
        let conflicts0 = core.sat.stats.conflicts;
        let sat_before = core.sat.stats.clone();
        let res = core.sat.solve_budgeted(&assumptions, &SolveBudget::UNLIMITED);
        self.stats.sat_time += t1.elapsed();
        self.stats.conflicts_per_check_hist[CONFLICTS_PER_CHECK_BOUNDS
            .partition_point(|&b| b < core.sat.stats.conflicts - conflicts0)] += 1;
        accumulate_delta(&mut self.sat_totals, &sat_before, &core.sat.stats);
        if let Some(ex) = self.exchange.clone() {
            self.inc_stats.learnt_exported += core.export(&ex, self.worker_id);
        }
        self.warm = Some(core);
        self.stats.solve_time += t0.elapsed();
        self.count_result(res)
    }

    fn count_result(&mut self, res: SatResult) -> CheckResult {
        match res {
            SatResult::Sat => {
                self.stats.sat_results += 1;
                CheckResult::Sat
            }
            SatResult::Unsat => {
                self.stats.unsat_results += 1;
                CheckResult::Unsat
            }
            SatResult::Unknown => {
                self.stats.unknown_results += 1;
                CheckResult::Unknown
            }
        }
    }

    /// Model value of one variable after a Sat check. Variables that did not
    /// occur in the checked formula evaluate to zero.
    pub fn model_value(&self, pool: &TermPool, v: VarId) -> crate::bitvec::BitVec {
        match &self.last {
            Some((sat, blaster)) => blaster.model_value(sat, pool, v),
            None => crate::bitvec::BitVec::zeros(pool.var_info(v).width),
        }
    }

    /// Full model over the given variables after a Sat check.
    pub fn model(&self, pool: &TermPool, vars: &[VarId]) -> Assignment {
        let mut asg = Assignment::new();
        for &v in vars {
            asg.set(v, self.model_value(pool, v));
        }
        asg
    }

    /// Model over every variable mentioned in the current assertions.
    pub fn model_of_assertions(&self, pool: &TermPool) -> Assignment {
        let mut vars = Vec::new();
        for &t in &self.asserted_terms {
            vars.extend(pool.vars_of(t));
        }
        vars.sort();
        vars.dedup();
        self.model(pool, &vars)
    }

    /// The asserted terms, outermost scope first (diagnostics).
    pub fn assertions(&self) -> &[TermId] {
        &self.asserted_terms
    }

    /// SAT-core statistics accumulated over all checks.
    pub fn sat_stats(&self) -> &crate::sat::SatStats {
        &self.sat_totals
    }
}

fn accumulate(total: &mut crate::sat::SatStats, one: &crate::sat::SatStats) {
    total.decisions += one.decisions;
    total.propagations += one.propagations;
    total.conflicts += one.conflicts;
    total.restarts += one.restarts;
    total.learnt_clauses += one.learnt_clauses;
    total.learnt_literals += one.learnt_literals;
    for (t, o) in total.learnt_size_hist.iter_mut().zip(one.learnt_size_hist.iter()) {
        *t += o;
    }
}

/// Accumulate the delta between two snapshots of a live solver's counters
/// (the warm core's stats are cumulative across checks).
fn accumulate_delta(
    total: &mut crate::sat::SatStats,
    before: &crate::sat::SatStats,
    after: &crate::sat::SatStats,
) {
    total.decisions += after.decisions - before.decisions;
    total.propagations += after.propagations - before.propagations;
    total.conflicts += after.conflicts - before.conflicts;
    total.restarts += after.restarts - before.restarts;
    total.learnt_clauses += after.learnt_clauses - before.learnt_clauses;
    total.learnt_literals += after.learnt_literals - before.learnt_literals;
    for ((t, b), a) in total
        .learnt_size_hist
        .iter_mut()
        .zip(before.learnt_size_hist.iter())
        .zip(after.learnt_size_hist.iter())
    {
        *t += a - b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;

    #[test]
    fn push_pop_restores_satisfiability() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c5 = pool.const_u128(8, 5);
        let c6 = pool.const_u128(8, 6);
        let eq5 = pool.eq(x, c5);
        let eq6 = pool.eq(x, c6);
        s.assert(&pool, eq5);
        assert_eq!(s.check(&pool), CheckResult::Sat);
        s.push();
        s.assert(&pool, eq6);
        assert_eq!(s.check(&pool), CheckResult::Unsat);
        s.pop();
        assert_eq!(s.check(&pool), CheckResult::Sat);
        let m = s.model_of_assertions(&pool);
        assert!(eval(&pool, &m, eq5).is_true());
    }

    #[test]
    fn nested_scopes() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 4);
        let lims: Vec<_> = (1..=3)
            .map(|i| {
                let c = pool.const_u128(4, 1 << i);
                pool.ult(x, c)
            })
            .collect();
        for &l in &lims {
            s.push();
            s.assert(&pool, l);
        }
        assert_eq!(s.depth(), 3);
        assert_eq!(s.check(&pool), CheckResult::Sat);
        s.pop();
        s.pop();
        s.pop();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.check(&pool), CheckResult::Sat);
    }

    #[test]
    fn transient_assumptions() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let zero = pool.const_u128(8, 0);
        let pos = pool.neq(x, zero);
        s.assert(&pool, pos);
        let isz = pool.eq(x, zero);
        assert_eq!(s.check_assuming(&pool, &[isz]), CheckResult::Unsat);
        assert_eq!(s.check(&pool), CheckResult::Sat);
    }

    #[test]
    fn model_satisfies_complex_constraint() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        // (x + y == 0xBEEF) && (x & 0xFF == 0x42)
        let x = pool.fresh_var("x", 16);
        let y = pool.fresh_var("y", 16);
        let sum = pool.add(x, y);
        let beef = pool.const_u128(16, 0xBEEF);
        let c1 = pool.eq(sum, beef);
        let mask = pool.const_u128(16, 0xFF);
        let lowx = pool.and(x, mask);
        let c42 = pool.const_u128(16, 0x42);
        let c2 = pool.eq(lowx, c42);
        s.assert(&pool, c1);
        s.assert(&pool, c2);
        assert_eq!(s.check(&pool), CheckResult::Sat);
        let m = s.model_of_assertions(&pool);
        assert!(eval(&pool, &m, c1).is_true());
        assert!(eval(&pool, &m, c2).is_true());
    }

    #[test]
    fn stats_accumulate() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.const_u128(8, 9);
        let eq = pool.eq(x, c);
        s.assert(&pool, eq);
        s.check(&pool);
        s.check(&pool);
        assert_eq!(s.stats.checks, 2);
        assert_eq!(s.stats.sat_results, 2);
    }

    /// A 24×24→48-bit factoring constraint: hard enough that a one-conflict
    /// budget can never finish it.
    fn hard_query(pool: &TermPool, s: &mut Solver) {
        let x = pool.fresh_var("x", 48);
        let y = pool.fresh_var("y", 48);
        let prod = pool.mul(x, y);
        // 0xB4D5_2F9E_1D03 = 198341*957463 — force a nontrivial factoring.
        let target = pool.const_u128(48, 198_341u128 * 957_463u128);
        let one = pool.const_u128(48, 1);
        s.assert(pool, pool.eq(prod, target));
        s.assert(pool, pool.ult(one, x));
        s.assert(pool, pool.ult(one, y));
        s.assert(pool, pool.ult(x, y));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        hard_query(&pool, &mut s);
        s.set_budget(crate::sat::SolveBudget::conflicts(2));
        assert_eq!(s.check(&pool), CheckResult::Unknown);
        assert_eq!(s.stats.unknown_results, 1);
        assert_eq!(s.stats.checks, 1);
    }

    #[test]
    fn budgeted_checks_are_deterministic() {
        // Same formula, same budget, same phase seed -> same verdict, every
        // time (budgeted queries always solve on a history-free fresh
        // instance, in either solver mode).
        let outcome = |seed: u64| {
            let pool = TermPool::new();
            let mut s = Solver::new();
            hard_query(&pool, &mut s);
            s.set_budget(crate::sat::SolveBudget::conflicts(50));
            s.set_phase_seed(seed);
            (s.check(&pool), s.check(&pool))
        };
        for seed in [0u64, 7, 0x1234] {
            let (a, b) = outcome(seed);
            assert_eq!(a, b, "seed {seed}: two identical checks disagree");
            let (a2, _) = outcome(seed);
            assert_eq!(a, a2, "seed {seed}: run-to-run nondeterminism");
        }
    }

    #[test]
    fn easy_queries_unaffected_by_budget() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let c = pool.const_u128(8, 42);
        s.assert(&pool, pool.eq(x, c));
        s.set_budget(crate::sat::SolveBudget::conflicts(1));
        assert_eq!(s.check(&pool), CheckResult::Sat);
        let m = s.model_of_assertions(&pool);
        assert!(eval(&pool, &m, pool.eq(x, c)).is_true());
    }

    #[test]
    fn model_before_any_check_is_zero() {
        let pool = TermPool::new();
        let s = Solver::new();
        let x = pool.fresh_var("x", 8);
        let crate::term::Node::Var(v) = *pool.node(x) else {
            panic!()
        };
        assert!(s.model_value(&pool, v).is_zero());
    }

    // ---- incremental spine solving --------------------------------------

    /// Sibling-style constraint sequences (shared prefix, one differing
    /// tail) to exercise spine reuse.
    fn spine_family(pool: &TermPool) -> Vec<Vec<TermId>> {
        let x = pool.fresh_var("sx", 16);
        let y = pool.fresh_var("sy", 16);
        let c10 = pool.const_u128(16, 10);
        let c100 = pool.const_u128(16, 100);
        let c7 = pool.const_u128(16, 7);
        let base = vec![pool.ult(x, c100), pool.ult(c10, x)];
        let sum = pool.add(x, y);
        let mut fams = Vec::new();
        for k in 0..6u128 {
            let ck = pool.const_u128(16, 20 + k);
            let mut cs = base.clone();
            cs.push(pool.eq(sum, ck));
            cs.push(pool.ult(y, c7));
            fams.push(cs);
        }
        // A contradictory sibling: x < 100 && x > 100.
        let mut bad = base.clone();
        bad.push(pool.ult(c100, x));
        fams.push(bad);
        fams
    }

    #[test]
    fn incremental_verdicts_match_fresh() {
        let pool = TermPool::new();
        let fams = spine_family(&pool);
        let mut fresh = Solver::new();
        fresh.set_mode(SolverMode::Fresh);
        let mut inc = Solver::new();
        inc.set_mode(SolverMode::Incremental);
        for (i, cs) in fams.iter().enumerate() {
            let f = fresh.check_feasible(&pool, cs);
            let w = inc.check_feasible(&pool, cs);
            assert_eq!(f, w, "family {i}: modes disagree");
        }
        assert_eq!(inc.inc_stats.warm_checks, fams.len() as u64);
        assert!(inc.inc_stats.roots_reused > 0, "siblings must reuse the spine prefix");
        assert_eq!(fresh.inc_stats.warm_checks, 0);
    }

    #[test]
    fn warm_core_reuses_prefix_encodings() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("wx", 32);
        let mut prefix: Vec<TermId> = Vec::new();
        for depth in 0..10u128 {
            let c = pool.const_u128(32, 1000 + depth);
            prefix.push(pool.ult(x, pool.add(pool.constant(crate::bitvec::BitVec::from_u128(
                32, depth,
            )), c)));
            assert_eq!(s.check_feasible(&pool, &prefix), CheckResult::Sat);
        }
        // Every check after the first reuses all prior roots.
        assert_eq!(s.inc_stats.roots_blasted, 10);
        assert_eq!(s.inc_stats.roots_reused, (0..10).sum::<u64>());
    }

    #[test]
    fn simplifier_decides_folded_contradictions_without_sat() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        let x = pool.fresh_var("fx", 8);
        let c1 = pool.const_u128(8, 1);
        let c2 = pool.const_u128(8, 2);
        let cs = vec![pool.eq(x, c1), pool.eq(x, c2)];
        assert_eq!(s.check_feasible(&pool, &cs), CheckResult::Unsat);
        assert!(s.inc_stats.simplify.fast_unsat > 0);
        // No warm core work happened: nothing was blasted.
        assert_eq!(s.inc_stats.roots_blasted, 0);
    }

    #[test]
    fn budgeted_feasibility_falls_back_to_fresh() {
        let pool = TermPool::new();
        let mut s = Solver::new();
        hard_query(&pool, &mut s);
        s.set_budget(crate::sat::SolveBudget::conflicts(2));
        assert_eq!(s.check_feasible(&pool, &[]), CheckResult::Unknown);
        assert_eq!(s.inc_stats.fresh_fallbacks, 1);
        assert_eq!(s.inc_stats.warm_checks, 0);
    }

    #[test]
    fn reset_warm_preserves_verdicts() {
        let pool = TermPool::new();
        let fams = spine_family(&pool);
        let mut s = Solver::new();
        let before: Vec<CheckResult> =
            fams.iter().map(|cs| s.check_feasible(&pool, cs)).collect();
        s.reset_warm();
        let after: Vec<CheckResult> =
            fams.iter().map(|cs| s.check_feasible(&pool, cs)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn exchange_imports_translated_clauses_soundly() {
        let pool = TermPool::new();
        let ex = Arc::new(ClauseExchange::new());
        let x = pool.fresh_var("ex", 8);
        let c0 = pool.const_u128(8, 0);
        let c1 = pool.const_u128(8, 1);
        // Inequalities survive the simplifier (no equality bindings), so
        // both constraints reach the warm core and get root literals.
        let lt1 = pool.ult(x, c1); // x < 1, i.e. x == 0
        let gt0 = pool.ult(c0, x); // x > 0

        // Worker A pushes both constraints (separately — together they are
        // jointly unsat).
        let mut a = Solver::new();
        a.set_exchange(ex.clone(), 0);
        assert_eq!(a.check_feasible(&pool, &[lt1]), CheckResult::Sat);
        assert_eq!(a.check_feasible(&pool, &[gt0]), CheckResult::Sat);

        // Hand-publish a *valid* clause over A's shared atoms — "not both
        // roots" — exercising the translation path end to end.
        let a_core = a.warm.as_ref().expect("warm core");
        let r0 = *a_core.root_lits.get(&lt1).expect("root for lt1");
        let r1 = *a_core.root_lits.get(&gt0).expect("root for gt0");
        let to_shared = |l: Lit| {
            let &(atom, reg_pos) = a_core.shared_of.get(&l.var()).expect("mapped");
            SharedLit { var: atom, positive: l.is_positive() == reg_pos }
        };
        ex.publish(0, vec![vec![to_shared(r0.negate()), to_shared(r1.negate())]]);

        // Worker B blasts the same constraints, imports, and must still get
        // semantically correct verdicts. B's first check pushes both roots,
        // so at import time every atom in the shared clause is mapped
        // (imports happen after the check's roots are blasted; clauses with
        // still-unknown atoms would be skipped for this core).
        let mut b = Solver::new();
        b.set_exchange(ex.clone(), 1);
        assert_eq!(b.check_feasible(&pool, &[lt1, gt0]), CheckResult::Unsat);
        assert_eq!(b.inc_stats.learnt_imported, 1);
        assert_eq!(b.check_feasible(&pool, &[lt1]), CheckResult::Sat);
        assert_eq!(b.check_feasible(&pool, &[gt0]), CheckResult::Sat);
        // And a model-bearing check is untouched by any of this.
        assert_eq!(b.check_assuming(&pool, &[lt1]), CheckResult::Sat);
        let crate::term::Node::Var(v) = *pool.node(x) else { panic!() };
        assert!(b.model_value(&pool, v).is_zero());
    }

    #[test]
    fn solver_mode_parses_cli_spellings() {
        assert_eq!(SolverMode::parse("fresh"), Some(SolverMode::Fresh));
        assert_eq!(SolverMode::parse("incremental"), Some(SolverMode::Incremental));
        assert_eq!(SolverMode::parse("warm"), None);
        assert_eq!(SolverMode::default().as_str(), "incremental");
    }
}
