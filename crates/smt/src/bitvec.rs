//! Arbitrary-precision, fixed-width bitvectors.
//!
//! P4 values routinely have widths like `bit<48>` (MAC addresses), `bit<128>`
//! (IPv6 addresses), or wider concatenations built by the packet model, so a
//! `u128` is not enough. `BitVec` stores little-endian 64-bit limbs and keeps
//! the invariant that all bits at positions `>= width` are zero.
//!
//! All arithmetic is modular in `width` bits, matching the semantics of the
//! P4 `bit<N>` type and of SMT-LIB `QF_BV`.

use std::fmt;

/// A fixed-width bitvector value with arbitrary precision.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    width: usize,
    /// Little-endian limbs. `limbs.len() == max(1, ceil(width / 64))` unless
    /// `width == 0`, in which case `limbs` is empty.
    limbs: Vec<u64>,
}

fn limbs_for(width: usize) -> usize {
    width.div_ceil(64)
}

impl BitVec {
    /// The zero-width bitvector (identity for concatenation).
    pub fn empty() -> Self {
        BitVec { width: 0, limbs: Vec::new() }
    }

    /// All-zero value of the given width.
    pub fn zeros(width: usize) -> Self {
        BitVec { width, limbs: vec![0; limbs_for(width)] }
    }

    /// All-one value of the given width.
    pub fn ones(width: usize) -> Self {
        let mut v = BitVec { width, limbs: vec![u64::MAX; limbs_for(width)] };
        v.normalize();
        v
    }

    /// Construct from a `u128`, truncating to `width` bits.
    pub fn from_u128(width: usize, value: u128) -> Self {
        let mut limbs = vec![0u64; limbs_for(width)];
        if !limbs.is_empty() {
            limbs[0] = value as u64;
        }
        if limbs.len() >= 2 {
            limbs[1] = (value >> 64) as u64;
        }
        let mut v = BitVec { width, limbs };
        v.normalize();
        v
    }

    /// Construct from a `u64`, truncating to `width` bits.
    pub fn from_u64(width: usize, value: u64) -> Self {
        Self::from_u128(width, value as u128)
    }

    /// Construct from a boolean as a 1-bit vector.
    pub fn from_bool(b: bool) -> Self {
        Self::from_u64(1, b as u64)
    }

    /// Construct from little-endian limbs, truncating to `width`.
    pub fn from_limbs(width: usize, mut limbs: Vec<u64>) -> Self {
        limbs.resize(limbs_for(width), 0);
        let mut v = BitVec { width, limbs };
        v.normalize();
        v
    }

    /// Construct from big-endian bytes; width is `bytes.len() * 8`.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let width = bytes.len() * 8;
        let mut v = BitVec::zeros(width);
        for (i, b) in bytes.iter().rev().enumerate() {
            // byte i (little-endian order) occupies bits [8i, 8i+8)
            v.limbs[i / 8] |= (*b as u64) << ((i % 8) * 8);
        }
        v
    }

    /// Big-endian byte representation. Requires `width % 8 == 0`.
    pub fn to_bytes_be(&self) -> Vec<u8> {
        assert!(self.width.is_multiple_of(8), "to_bytes_be on width {}", self.width);
        let n = self.width / 8;
        let mut out = vec![0u8; n];
        for i in 0..n {
            let byte = (self.limbs[i / 8] >> ((i % 8) * 8)) as u8;
            out[n - 1 - i] = byte;
        }
        out
    }

    /// Parse from a hex string (no prefix), producing a value of `width` bits.
    pub fn from_hex(width: usize, hex: &str) -> Option<Self> {
        let mut v = BitVec::zeros(width);
        for ch in hex.chars() {
            let d = ch.to_digit(16)? as u64;
            v = v.shl_const(4).or(&BitVec::from_u64(width, d));
        }
        Some(v)
    }

    fn normalize(&mut self) {
        if self.width == 0 {
            self.limbs.clear();
            return;
        }
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The raw little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Bit at position `i` (little-endian; bit 0 is least significant).
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.width);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `b`.
    pub fn set_bit(&mut self, i: usize, b: bool) {
        assert!(i < self.width);
        let mask = 1u64 << (i % 64);
        if b {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True if this is a 1-bit value equal to 1.
    pub fn is_true(&self) -> bool {
        self.width == 1 && self.limbs[0] == 1
    }

    /// Value as `u64` if it fits, else `None`.
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs.iter().skip(1).any(|&l| l != 0) {
            None
        } else {
            Some(self.limbs.first().copied().unwrap_or(0))
        }
    }

    /// Value as `u128` if it fits, else `None`.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.iter().skip(2).any(|&l| l != 0) {
            None
        } else {
            let lo = self.limbs.first().copied().unwrap_or(0) as u128;
            let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
            Some(lo | (hi << 64))
        }
    }

    fn binary_assert(&self, rhs: &BitVec) {
        assert_eq!(self.width, rhs.width, "width mismatch: {} vs {}", self.width, rhs.width);
    }

    /// Modular addition.
    pub fn add(&self, rhs: &BitVec) -> BitVec {
        self.binary_assert(rhs);
        let mut out = BitVec::zeros(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.normalize();
        out
    }

    /// Modular subtraction.
    pub fn sub(&self, rhs: &BitVec) -> BitVec {
        self.add(&rhs.negate())
    }

    /// Two's-complement negation.
    pub fn negate(&self) -> BitVec {
        if self.width == 0 {
            return self.clone();
        }
        self.not().add(&BitVec::from_u64(self.width, 1))
    }

    /// Modular multiplication (schoolbook).
    pub fn mul(&self, rhs: &BitVec) -> BitVec {
        self.binary_assert(rhs);
        let n = self.limbs.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let a = self.limbs[i] as u128;
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..n - i {
                let cur = acc[i + j] as u128 + a * rhs.limbs[j] as u128 + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = BitVec { width: self.width, limbs: acc };
        out.normalize();
        out
    }

    /// Unsigned division; division by zero yields all-ones (SMT-LIB semantics).
    pub fn udiv(&self, rhs: &BitVec) -> BitVec {
        self.binary_assert(rhs);
        if rhs.is_zero() {
            return BitVec::ones(self.width);
        }
        self.divmod(rhs).0
    }

    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB).
    pub fn urem(&self, rhs: &BitVec) -> BitVec {
        self.binary_assert(rhs);
        if rhs.is_zero() {
            return self.clone();
        }
        self.divmod(rhs).1
    }

    /// Restoring long division by bits. Slow but simple; widths are small.
    fn divmod(&self, rhs: &BitVec) -> (BitVec, BitVec) {
        let mut q = BitVec::zeros(self.width);
        let mut r = BitVec::zeros(self.width);
        for i in (0..self.width).rev() {
            r = r.shl_const(1);
            r.set_bit(0, self.bit(i));
            if r.ult(rhs) {
                continue;
            }
            r = r.sub(rhs);
            q.set_bit(i, true);
        }
        (q, r)
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: &BitVec) -> BitVec {
        self.binary_assert(rhs);
        let limbs = self.limbs.iter().zip(&rhs.limbs).map(|(a, b)| a & b).collect();
        BitVec { width: self.width, limbs }
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: &BitVec) -> BitVec {
        self.binary_assert(rhs);
        let limbs = self.limbs.iter().zip(&rhs.limbs).map(|(a, b)| a | b).collect();
        BitVec { width: self.width, limbs }
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: &BitVec) -> BitVec {
        self.binary_assert(rhs);
        let limbs = self.limbs.iter().zip(&rhs.limbs).map(|(a, b)| a ^ b).collect();
        BitVec { width: self.width, limbs }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> BitVec {
        let limbs = self.limbs.iter().map(|a| !a).collect();
        let mut v = BitVec { width: self.width, limbs };
        v.normalize();
        v
    }

    /// Left shift by a constant amount; shifts `>= width` yield zero.
    pub fn shl_const(&self, amount: usize) -> BitVec {
        if amount >= self.width {
            return BitVec::zeros(self.width);
        }
        let mut out = BitVec::zeros(self.width);
        let limb_shift = amount / 64;
        let bit_shift = amount % 64;
        for i in (0..self.limbs.len()).rev() {
            if i < limb_shift {
                break;
            }
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out.normalize();
        out
    }

    /// Logical right shift by a constant amount; shifts `>= width` yield zero.
    pub fn lshr_const(&self, amount: usize) -> BitVec {
        if amount >= self.width {
            return BitVec::zeros(self.width);
        }
        let mut out = BitVec::zeros(self.width);
        let limb_shift = amount / 64;
        let bit_shift = amount % 64;
        for i in 0..self.limbs.len() - limb_shift {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < self.limbs.len() {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out.limbs[i] = v;
        }
        out
    }

    /// Arithmetic right shift by a constant amount (sign bit replicated).
    pub fn ashr_const(&self, amount: usize) -> BitVec {
        if self.width == 0 {
            return self.clone();
        }
        let sign = self.bit(self.width - 1);
        if amount >= self.width {
            return if sign { BitVec::ones(self.width) } else { BitVec::zeros(self.width) };
        }
        let mut out = self.lshr_const(amount);
        if sign {
            for i in self.width - amount..self.width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Left shift where the amount is itself a bitvector (saturating).
    pub fn shl(&self, amount: &BitVec) -> BitVec {
        match amount.to_u64() {
            Some(a) if (a as usize) < self.width => self.shl_const(a as usize),
            _ => BitVec::zeros(self.width),
        }
    }

    /// Logical right shift with a bitvector amount (saturating).
    pub fn lshr(&self, amount: &BitVec) -> BitVec {
        match amount.to_u64() {
            Some(a) if (a as usize) < self.width => self.lshr_const(a as usize),
            _ => BitVec::zeros(self.width),
        }
    }

    /// Arithmetic right shift with a bitvector amount (saturating).
    pub fn ashr(&self, amount: &BitVec) -> BitVec {
        match amount.to_u64() {
            Some(a) if (a as usize) < self.width => self.ashr_const(a as usize),
            _ => self.ashr_const(self.width),
        }
    }

    /// Concatenation: `self` becomes the high bits, `low` the low bits
    /// (SMT-LIB `concat` order).
    pub fn concat(&self, low: &BitVec) -> BitVec {
        let width = self.width + low.width;
        let mut out = BitVec::zeros(width);
        for i in 0..low.width {
            if low.bit(i) {
                out.set_bit(i, true);
            }
        }
        for i in 0..self.width {
            if self.bit(i) {
                out.set_bit(low.width + i, true);
            }
        }
        out
    }

    /// Extract bits `[lo, hi]` inclusive (SMT-LIB `extract` order, `hi >= lo`).
    pub fn extract(&self, hi: usize, lo: usize) -> BitVec {
        assert!(hi >= lo && hi < self.width, "extract [{hi}:{lo}] of width {}", self.width);
        let mut out = BitVec::zeros(hi - lo + 1);
        for i in lo..=hi {
            if self.bit(i) {
                out.set_bit(i - lo, true);
            }
        }
        out
    }

    /// Zero-extend to `width` bits (must be `>= self.width`).
    pub fn zext(&self, width: usize) -> BitVec {
        assert!(width >= self.width);
        let mut out = BitVec::zeros(width);
        out.limbs[..self.limbs.len()].copy_from_slice(&self.limbs);
        out
    }

    /// Sign-extend to `width` bits (must be `>= self.width`).
    pub fn sext(&self, width: usize) -> BitVec {
        assert!(width >= self.width);
        let mut out = self.zext(width);
        if self.width > 0 && self.bit(self.width - 1) {
            for i in self.width..width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Truncate or extend (zero-fill) to an arbitrary width, P4 cast style.
    pub fn cast(&self, width: usize) -> BitVec {
        if width == self.width {
            self.clone()
        } else if width < self.width {
            if width == 0 { BitVec::empty() } else { self.extract(width - 1, 0) }
        } else {
            self.zext(width)
        }
    }

    /// Unsigned less-than.
    pub fn ult(&self, rhs: &BitVec) -> bool {
        self.binary_assert(rhs);
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != rhs.limbs[i] {
                return self.limbs[i] < rhs.limbs[i];
            }
        }
        false
    }

    /// Unsigned less-or-equal.
    pub fn ule(&self, rhs: &BitVec) -> bool {
        !rhs.ult(self)
    }

    /// Signed less-than (two's complement).
    pub fn slt(&self, rhs: &BitVec) -> bool {
        self.binary_assert(rhs);
        if self.width == 0 {
            return false;
        }
        let sa = self.bit(self.width - 1);
        let sb = rhs.bit(self.width - 1);
        if sa != sb {
            return sa;
        }
        self.ult(rhs)
    }

    /// Signed less-or-equal.
    pub fn sle(&self, rhs: &BitVec) -> bool {
        !rhs.slt(self)
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}w{}", self.width, self)
    }
}

impl fmt::Display for BitVec {
    /// Hex display, most significant digit first, zero-padded to the width.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 0 {
            return write!(f, "0x<empty>");
        }
        write!(f, "0x")?;
        let digits = self.width.div_ceil(4);
        for d in (0..digits).rev() {
            let lo = d * 4;
            let hi = (lo + 3).min(self.width - 1);
            let nib = self.extract(hi, lo).to_u64().unwrap();
            write!(f, "{nib:x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u128() {
        let v = BitVec::from_u128(100, 0xDEAD_BEEF_CAFE_BABE_1234_5678u128);
        assert_eq!(v.to_u128(), Some(0xDEAD_BEEF_CAFE_BABE_1234_5678u128));
    }

    #[test]
    fn truncation_on_construction() {
        let v = BitVec::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), Some(0xF));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BitVec::from_u128(128, u128::MAX);
        let b = BitVec::from_u64(128, 1);
        assert!(a.add(&b).is_zero());
    }

    #[test]
    fn add_modular_wrap() {
        let a = BitVec::from_u64(8, 0xFF);
        let b = BitVec::from_u64(8, 2);
        assert_eq!(a.add(&b).to_u64(), Some(1));
    }

    #[test]
    fn sub_and_negate() {
        let a = BitVec::from_u64(16, 5);
        let b = BitVec::from_u64(16, 7);
        assert_eq!(a.sub(&b).to_u64(), Some(0xFFFE));
        assert_eq!(BitVec::from_u64(8, 1).negate().to_u64(), Some(0xFF));
    }

    #[test]
    fn mul_wide() {
        let a = BitVec::from_u128(128, u64::MAX as u128);
        let b = BitVec::from_u128(128, u64::MAX as u128);
        let expect = (u64::MAX as u128).wrapping_mul(u64::MAX as u128);
        assert_eq!(a.mul(&b).to_u128(), Some(expect));
    }

    #[test]
    fn div_rem() {
        let a = BitVec::from_u64(32, 100);
        let b = BitVec::from_u64(32, 7);
        assert_eq!(a.udiv(&b).to_u64(), Some(14));
        assert_eq!(a.urem(&b).to_u64(), Some(2));
    }

    #[test]
    fn div_by_zero_smtlib() {
        let a = BitVec::from_u64(8, 42);
        let z = BitVec::zeros(8);
        assert_eq!(a.udiv(&z).to_u64(), Some(0xFF));
        assert_eq!(a.urem(&z).to_u64(), Some(42));
    }

    #[test]
    fn shifts() {
        let a = BitVec::from_u64(16, 0x00F0);
        assert_eq!(a.shl_const(4).to_u64(), Some(0x0F00));
        assert_eq!(a.lshr_const(4).to_u64(), Some(0x000F));
        assert_eq!(a.shl_const(16).to_u64(), Some(0));
        let neg = BitVec::from_u64(8, 0x80);
        assert_eq!(neg.ashr_const(3).to_u64(), Some(0xF0));
    }

    #[test]
    fn shift_across_limbs() {
        let a = BitVec::from_u64(128, 1);
        assert_eq!(a.shl_const(100).lshr_const(100).to_u64(), Some(1));
    }

    #[test]
    fn concat_and_extract() {
        let hi = BitVec::from_u64(8, 0xAB);
        let lo = BitVec::from_u64(8, 0xCD);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 16);
        assert_eq!(c.to_u64(), Some(0xABCD));
        assert_eq!(c.extract(15, 8).to_u64(), Some(0xAB));
        assert_eq!(c.extract(7, 0).to_u64(), Some(0xCD));
    }

    #[test]
    fn bytes_round_trip() {
        let bytes = [0xDE, 0xAD, 0xBE, 0xEF, 0x01];
        let v = BitVec::from_bytes_be(&bytes);
        assert_eq!(v.width(), 40);
        assert_eq!(v.to_bytes_be(), bytes);
    }

    #[test]
    fn comparisons() {
        let a = BitVec::from_u64(8, 0x80); // -128 signed
        let b = BitVec::from_u64(8, 0x01);
        assert!(b.ult(&a));
        assert!(a.slt(&b));
        assert!(a.sle(&a));
        assert!(a.ule(&a));
    }

    #[test]
    fn sext_zext() {
        let v = BitVec::from_u64(4, 0b1010);
        assert_eq!(v.zext(8).to_u64(), Some(0x0A));
        assert_eq!(v.sext(8).to_u64(), Some(0xFA));
    }

    #[test]
    fn hex_parse_and_display() {
        let v = BitVec::from_hex(16, "BeeF").unwrap();
        assert_eq!(v.to_u64(), Some(0xBEEF));
        assert_eq!(format!("{v}"), "0xbeef");
        let odd = BitVec::from_u64(9, 0x1FF);
        assert_eq!(format!("{odd}"), "0x1ff");
    }

    #[test]
    fn empty_vector() {
        let e = BitVec::empty();
        assert_eq!(e.width(), 0);
        assert!(e.is_zero());
        let v = BitVec::from_u64(8, 7);
        assert_eq!(e.concat(&v).to_u64(), Some(7));
        assert_eq!(v.concat(&e).to_u64(), Some(7));
    }
}
