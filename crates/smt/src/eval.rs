//! Concrete evaluation of terms under a variable assignment.
//!
//! Used to evaluate concolic-function arguments against a model, to check
//! models returned by the solver, and by the property tests that cross-check
//! the bit-blaster against this reference semantics.

use crate::bitvec::BitVec;
use crate::term::{BinOp, Node, TermId, TermPool, VarId};
use std::collections::HashMap;

/// A (partial) assignment of variables to values. Missing variables evaluate
/// to zero, mirroring how the solver completes don't-care bits.
#[derive(Default, Clone, Debug)]
pub struct Assignment {
    values: HashMap<VarId, BitVec>,
}

impl Assignment {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, var: VarId, value: BitVec) {
        self.values.insert(var, value);
    }

    pub fn get(&self, var: VarId) -> Option<&BitVec> {
        self.values.get(&var)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &BitVec)> {
        self.values.iter()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Evaluate `root` in `pool` under `asg`, memoizing shared subterms.
pub fn eval(pool: &TermPool, asg: &Assignment, root: TermId) -> BitVec {
    let mut memo: HashMap<TermId, BitVec> = HashMap::new();
    eval_memo(pool, asg, root, &mut memo)
}

fn eval_memo(
    pool: &TermPool,
    asg: &Assignment,
    id: TermId,
    memo: &mut HashMap<TermId, BitVec>,
) -> BitVec {
    if let Some(v) = memo.get(&id) {
        return v.clone();
    }
    let out = match pool.node(id) {
        Node::Const(v) => v.clone(),
        Node::Var(v) => asg
            .get(*v)
            .cloned()
            .unwrap_or_else(|| BitVec::zeros(pool.var_info(*v).width)),
        Node::Not(a) => eval_memo(pool, asg, *a, memo).not(),
        Node::Neg(a) => eval_memo(pool, asg, *a, memo).negate(),
        Node::Extract { hi, lo, arg } => {
            eval_memo(pool, asg, *arg, memo).extract(*hi as usize, *lo as usize)
        }
        Node::Ite(c, t, e) => {
            if eval_memo(pool, asg, *c, memo).is_true() {
                eval_memo(pool, asg, *t, memo)
            } else {
                eval_memo(pool, asg, *e, memo)
            }
        }
        Node::Bin(op, a, b) => {
            let va = eval_memo(pool, asg, *a, memo);
            let vb = eval_memo(pool, asg, *b, memo);
            match op {
                BinOp::Add => va.add(&vb),
                BinOp::Sub => va.sub(&vb),
                BinOp::Mul => va.mul(&vb),
                BinOp::UDiv => va.udiv(&vb),
                BinOp::URem => va.urem(&vb),
                BinOp::And => va.and(&vb),
                BinOp::Or => va.or(&vb),
                BinOp::Xor => va.xor(&vb),
                BinOp::Shl => va.shl(&vb),
                BinOp::LShr => va.lshr(&vb),
                BinOp::AShr => va.ashr(&vb),
                BinOp::Concat => va.concat(&vb),
                BinOp::Eq => BitVec::from_bool(va == vb),
                BinOp::Ult => BitVec::from_bool(va.ult(&vb)),
                BinOp::Ule => BitVec::from_bool(va.ule(&vb)),
                BinOp::Slt => BitVec::from_bool(va.slt(&vb)),
                BinOp::Sle => BitVec::from_bool(va.sle(&vb)),
            }
        }
    };
    memo.insert(id, out.clone());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arith() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 8);
        let y = p.fresh_var("y", 8);
        let s = p.add(x, y);
        let mut asg = Assignment::new();
        let xv = match p.node(x) {
            Node::Var(v) => *v,
            _ => unreachable!(),
        };
        let yv = match p.node(y) {
            Node::Var(v) => *v,
            _ => unreachable!(),
        };
        asg.set(xv, BitVec::from_u64(8, 200));
        asg.set(yv, BitVec::from_u64(8, 100));
        assert_eq!(eval(&p, &asg, s).to_u64(), Some(44)); // wraps mod 256
    }

    #[test]
    fn missing_vars_are_zero() {
        let p = TermPool::new();
        let x = p.fresh_var("x", 16);
        let one = p.const_u128(16, 1);
        let s = p.add(x, one);
        assert_eq!(eval(&p, &Assignment::new(), s).to_u64(), Some(1));
    }

    #[test]
    fn eval_ite() {
        let p = TermPool::new();
        let c = p.fresh_var("c", 1);
        let a = p.const_u128(8, 7);
        let b = p.const_u128(8, 9);
        let t = p.ite(c, a, b);
        let cv = match p.node(c) {
            Node::Var(v) => *v,
            _ => unreachable!(),
        };
        let mut asg = Assignment::new();
        asg.set(cv, BitVec::from_bool(true));
        assert_eq!(eval(&p, &asg, t).to_u64(), Some(7));
        let mut asg2 = Assignment::new();
        asg2.set(cv, BitVec::from_bool(false));
        assert_eq!(eval(&p, &asg2, t).to_u64(), Some(9));
    }
}
