//! The bug-finding campaign (Tables 2 and 3): generate tests for the corpus,
//! then run them against each faulted software model and record which faults
//! are detected and how they manifest.

use p4t_interp::{execute_and_check, Arch, Fault, FaultClass, FaultSet, FaultTargetClass, Verdict};
use p4t_targets::{Tofino, V1Model};
use p4testgen_core::{Testgen, TestgenConfig, TestSpec};
use std::collections::HashMap;

/// How one fault was (or was not) detected.
#[derive(Clone, Debug)]
pub struct Detection {
    pub fault: Fault,
    /// Program whose test first exposed the fault.
    pub program: Option<String>,
    /// How the failure manifested.
    pub observed: Option<FaultClass>,
    pub detail: String,
}

/// The campaign outcome.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    pub detections: Vec<Detection>,
}

impl CampaignResult {
    pub fn detected(&self) -> usize {
        self.detections.iter().filter(|d| d.observed.is_some()).count()
    }

    pub fn count(&self, target: FaultTargetClass, class: FaultClass) -> usize {
        self.detections
            .iter()
            .filter(|d| {
                d.observed == Some(class) && d.fault.target_class() == target
            })
            .count()
    }
}

/// Pre-generated tests for one program.
pub struct ProgramTests {
    pub name: String,
    pub arch: Arch,
    pub prog: p4t_ir::IrProgram,
    pub tests: Vec<TestSpec>,
}

/// Generate tests for one program.
fn generate_one(name: &str, src: &str, arch: &str, max_tests: u64) -> ProgramTests {
    let mut config = TestgenConfig::default();
    config.max_tests = max_tests;
    match arch {
        "v1model" => {
            let mut tg = Testgen::new(name, src, V1Model::new(), config)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut tests = Vec::new();
            tg.run(|t| {
                tests.push(t.clone());
                true
            });
            ProgramTests {
                name: name.to_string(),
                arch: Arch::V1Model,
                prog: tg.prog.clone(),
                tests,
            }
        }
        "tna" => {
            let mut tg = Testgen::new(name, src, Tofino::tna(), config)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut tests = Vec::new();
            tg.run(|t| {
                tests.push(t.clone());
                true
            });
            ProgramTests { name: name.to_string(), arch: Arch::Tna, prog: tg.prog.clone(), tests }
        }
        other => panic!("unknown arch {other}"),
    }
}

/// Generate up to `max_tests` tests for every corpus program, one scoped
/// thread per program (generation runs are independent; each owns its own
/// term pool and solver — the only CPU-bound fan-out in the harness, per
/// the Tokio guide's "use threads, not async, for CPU-bound work").
pub fn generate_corpus_tests(max_tests: u64) -> Vec<ProgramTests> {
    let programs = p4t_corpus::all_programs();
    let mut results: Vec<Option<ProgramTests>> = Vec::new();
    results.resize_with(programs.len(), || None);
    let slots: Vec<parking_lot::Mutex<Option<ProgramTests>>> =
        results.into_iter().map(parking_lot::Mutex::new).collect();
    crossbeam::scope(|scope| {
        for (i, (name, src, arch)) in programs.iter().enumerate() {
            let slot = &slots[i];
            scope.spawn(move |_| {
                *slot.lock() = Some(generate_one(name, src, arch, max_tests));
            });
        }
    })
    .expect("generation threads join");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every program generated"))
        .collect()
}

/// Which architectures a fault's toolchain class applies to.
fn arch_matches(fault: Fault, arch: Arch) -> bool {
    match fault.target_class() {
        FaultTargetClass::Bmv2 => arch == Arch::V1Model,
        FaultTargetClass::Tofino => matches!(arch, Arch::Tna | Arch::T2na),
    }
}

/// Run the full campaign: for every fault, plant it into the matching
/// software model and look for a corpus test that fails.
pub fn run_campaign(corpus: &[ProgramTests]) -> CampaignResult {
    let mut result = CampaignResult::default();
    for fault in Fault::catalog() {
        let mut detection = Detection {
            fault,
            program: None,
            observed: None,
            detail: String::new(),
        };
        'progs: for pt in corpus {
            if !arch_matches(fault, pt.arch) {
                continue;
            }
            for t in &pt.tests {
                let verdict =
                    execute_and_check(&pt.prog, pt.arch, FaultSet::single(fault), t);
                match verdict {
                    Verdict::Pass => {}
                    Verdict::Exception(m) => {
                        detection.program = Some(pt.name.clone());
                        detection.observed = Some(FaultClass::Exception);
                        detection.detail = m;
                        break 'progs;
                    }
                    Verdict::WrongOutput(m) => {
                        detection.program = Some(pt.name.clone());
                        detection.observed = Some(FaultClass::WrongCode);
                        detection.detail = m;
                        break 'progs;
                    }
                }
            }
        }
        result.detections.push(detection);
    }
    result
}

/// Sanity: verify unfaulted models pass everything (oracle correctness).
pub fn unfaulted_pass_rate(corpus: &[ProgramTests]) -> (usize, usize) {
    let mut pass = 0;
    let mut total = 0;
    for pt in corpus {
        for t in &pt.tests {
            total += 1;
            if execute_and_check(&pt.prog, pt.arch, FaultSet::none(), t).is_pass() {
                pass += 1;
            }
        }
    }
    (pass, total)
}

/// Per-target detection counts in Table 2's layout.
pub fn table2_rows(result: &CampaignResult) -> HashMap<(&'static str, &'static str), usize> {
    let mut rows = HashMap::new();
    rows.insert(
        ("Exception", "BMv2"),
        result.count(FaultTargetClass::Bmv2, FaultClass::Exception),
    );
    rows.insert(
        ("Exception", "Tofino"),
        result.count(FaultTargetClass::Tofino, FaultClass::Exception),
    );
    rows.insert(
        ("Wrong Code", "BMv2"),
        result.count(FaultTargetClass::Bmv2, FaultClass::WrongCode),
    );
    rows.insert(
        ("Wrong Code", "Tofino"),
        result.count(FaultTargetClass::Tofino, FaultClass::WrongCode),
    );
    rows
}
