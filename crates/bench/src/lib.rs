//! # p4t-bench — the evaluation harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus shared
//! campaign machinery used by both the binaries and the integration tests.

pub mod campaign;

pub use campaign::{run_campaign, CampaignResult, Detection};
