//! Table 4b reproduction: the effect of preconditions on the number of
//! tests generated for middleblock, relative to the unconstrained run.
//!
//! Paper: none 237,846 (0%); fixed-size packet 178,384 (25%);
//! P4-constraints 135,719 (43%); both 101,789 (57%). All rows keep 100%
//! statement coverage. Our analogue is smaller; the reproduction targets
//! the *monotone reduction* with both preconditions cutting the most, and
//! 100% coverage everywhere.

use p4testgen_core::{Preconditions, Testgen, TestgenConfig};
use p4t_targets::V1Model;

fn run(pre: Preconditions) -> (u64, f64) {
    let mut config = TestgenConfig::default();
    config.preconditions = pre;
    let mut tg =
        Testgen::new("middleblock_sim", &p4t_corpus::MIDDLEBLOCK_SIM, V1Model::new(), config)
            .unwrap();
    let summary = tg.run(|_| true);
    (summary.tests, summary.coverage.percent)
}

fn main() {
    // 1500-byte fixed packets, as in the paper's caption.
    let rows = [
        ("None", Preconditions::none()),
        ("Fixed-size pkt.", Preconditions::with_fixed_packet(1500)),
        ("P4-constraints", Preconditions::with_constraints()),
        ("P4-constraints & fixed-size pkt.", Preconditions::all(1500)),
    ];
    let mut results = Vec::new();
    for (name, pre) in rows {
        let (tests, cov) = run(pre);
        results.push((name, tests, cov));
    }
    let baseline = results[0].1;
    println!("Table 4b: effect of preconditions on tests for middleblock_sim (reproduction)");
    println!("| Applied precondition             | Valid test paths | Reduction | Coverage |");
    println!("|----------------------------------|------------------|-----------|----------|");
    for (name, tests, cov) in &results {
        let reduction = if baseline > 0 {
            100.0 * (1.0 - *tests as f64 / baseline as f64)
        } else {
            0.0
        };
        println!("| {:32} | {:16} | {:8.0}% | {:7.1}% |", name, tests, reduction, cov);
    }
    println!();
    println!("(paper: 237846/0%, 178384/25%, 135719/43%, 101789/57%, all at 100% coverage)");
}
