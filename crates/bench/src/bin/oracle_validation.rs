//! §7 "Does P4Testgen produce correct tests?" — the oracle-validation run:
//! generate tests with a fixed seed for every corpus program and execute
//! them on the corresponding (unfaulted) software model.
//!
//! The paper uses 10 tests per program across ~2000 programs; we use the
//! corpus with a deeper per-program budget.

use p4t_bench::campaign::{generate_corpus_tests, unfaulted_pass_rate};

fn main() {
    let per_program: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let corpus = generate_corpus_tests(per_program);
    let total_tests: usize = corpus.iter().map(|p| p.tests.len()).sum();
    println!("oracle validation: {} programs, {} tests (budget {per_program}/program)", corpus.len(), total_tests);
    for pt in &corpus {
        println!("  {:18} {:4} tests ({:?})", pt.name, pt.tests.len(), pt.arch);
    }
    let (pass, total) = unfaulted_pass_rate(&corpus);
    println!("\nresult: {pass}/{total} tests pass on the unfaulted software models");
    assert_eq!(pass, total, "oracle validation failed");
    println!("oracle validation: OK");
}
