//! Table 2/3 reproduction: the bug-finding campaign.
//!
//! Plants each of the 25 catalog faults (9 BMv2-class, 16 Tofino-class)
//! into the corresponding software model and counts how many are exposed by
//! the generated corpus tests, classified as exceptions or wrong code.
//!
//! Usage: `cargo run --release -p p4t-bench --bin table2_bugs [--detail]`

use p4t_bench::campaign::{generate_corpus_tests, run_campaign, table2_rows, unfaulted_pass_rate};
use p4t_interp::FaultTargetClass;

fn main() {
    let detail = std::env::args().any(|a| a == "--detail");
    eprintln!("generating corpus tests...");
    let corpus = generate_corpus_tests(0);
    let total_tests: usize = corpus.iter().map(|p| p.tests.len()).sum();
    let (pass, total) = unfaulted_pass_rate(&corpus);
    eprintln!("corpus: {} programs, {total_tests} tests; unfaulted pass rate {pass}/{total}", corpus.len());
    assert_eq!(pass, total, "oracle must be correct before hunting bugs");

    eprintln!("running fault campaign (25 faults)...");
    let result = run_campaign(&corpus);
    let rows = table2_rows(&result);
    let exc_b = rows[&("Exception", "BMv2")];
    let exc_t = rows[&("Exception", "Tofino")];
    let wc_b = rows[&("Wrong Code", "BMv2")];
    let wc_t = rows[&("Wrong Code", "Tofino")];

    println!("Table 2: Bugs in targets discovered by P4Testgen (reproduction)");
    println!("| Bug Type   | BMv2 | Tofino | Total |  (paper: 8/9=17, 1/7=8, 9/16=25)");
    println!("|------------|------|--------|-------|");
    println!("| Exception  | {exc_b:4} | {exc_t:6} | {:5} |", exc_b + exc_t);
    println!("| Wrong Code | {wc_b:4} | {wc_t:6} | {:5} |", wc_b + wc_t);
    println!(
        "| Total      | {:4} | {:6} | {:5} |",
        exc_b + wc_b,
        exc_t + wc_t,
        result.detected()
    );
    let missed: Vec<_> = result
        .detections
        .iter()
        .filter(|d| d.observed.is_none())
        .collect();
    if !missed.is_empty() {
        println!("\nNOT detected ({}):", missed.len());
        for d in &missed {
            println!("  {} — {}", d.fault.label(), d.fault.description());
        }
    }
    if detail {
        println!("\nTable 3: per-bug detail (BMv2-class rows follow the paper; Tofino-class are analogues)");
        println!("| Label  | Class      | Detected by | Description");
        for d in &result.detections {
            let by = d.program.clone().unwrap_or_else(|| "-".into());
            println!(
                "| {:6} | {:10} | {:16} | {}",
                d.fault.label(),
                format!("{:?}", d.fault.class()),
                by,
                d.fault.description()
            );
        }
    }
    // Table-2 counts must match the paper when all faults are detected.
    let fully_reproduced = exc_b == 8 && wc_b == 1 && exc_t == 9 && wc_t == 7;
    println!(
        "\nreproduction status: {}",
        if fully_reproduced { "EXACT MATCH with Table 2" } else { "PARTIAL (see missed list)" }
    );
    let _ = FaultTargetClass::Bmv2;
}
