//! Table 1 reproduction: the extension ↔ target ↔ test back end matrix,
//! printed from the actual registries (each row is checked against the
//! implementation, not hard-coded strings).

use p4t_backends::{ProtoBackend, PtfBackend, StfBackend, TestBackend};
use p4t_targets::{EbpfModel, Tofino, V1Model};
use p4testgen_core::Target;

fn main() {
    // Instantiate every extension to prove it exists and resolves.
    let v1 = V1Model::new();
    let tna = Tofino::tna();
    let t2na = Tofino::t2na();
    let ebpf = EbpfModel::new();
    let stf = StfBackend;
    let ptf = PtfBackend;
    let proto = ProtoBackend;

    println!("Table 1: P4Testgen extensions (reproduction)");
    println!("| Architecture | Target        | Test back ends      |");
    println!("|--------------|---------------|---------------------|");
    println!(
        "| {:12} | BMv2 model    | {}, {}, {} |",
        v1.name(),
        stf.name().to_uppercase(),
        ptf.name().to_uppercase(),
        proto.name()
    );
    println!("| {:12} | Tofino 1 model| {}            |", tna.name(), ptf.name().to_uppercase());
    println!("| {:12} | Tofino 2 model| {}            |", t2na.name(), ptf.name().to_uppercase());
    println!("| {:12} | eBPF model    | {}            |", ebpf.name(), stf.name().to_uppercase());
    println!();
    println!("(paper Table 1: v1model/BMv2 with STF+PTF+Protobuf; tna & t2na/Tofino");
    println!(" with internal framework+PTF; ebpf_model/Linux kernel with STF)");
}
