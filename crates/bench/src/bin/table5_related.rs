//! Table 5: the related-work comparison matrix. This is a static table in
//! the paper; we reprint it (with p4testgen-rs in P4Testgen's row) for the
//! experiment index's completeness.

fn main() {
    println!("Table 5: Tools that test the P4 toolchain (from the paper)");
    println!("| Tool        | Generation | No extra input? | Target agnostic | Target-specific semantics |");
    println!("|-------------|------------|-----------------|-----------------|---------------------------|");
    for (tool, gen, noinput, agnostic, semantics) in [
        ("Gauntlet", "Symbex", true, true, false),
        ("Meissa", "Symbex", false, false, true),
        ("SwitchV", "Hybrid", false, false, true),
        ("Petr4", "Symbex", false, true, true),
        ("p4pktgen", "Symbex", true, false, false),
        ("PTA", "Fuzzing", false, true, false),
        ("DBVal", "Fuzzing", false, true, false),
        ("FP4", "Fuzzing", false, true, false),
        ("P4Testgen (this reproduction)", "Symbex", true, true, true),
    ] {
        let b = |v: bool| if v { "yes" } else { "no " };
        println!(
            "| {:27} | {:10} | {:15} | {:15} | {:25} |",
            tool,
            gen,
            b(noinput),
            b(agnostic),
            b(semantics)
        );
    }
}
