//! Fig. 7 reproduction: the distribution of CPU time across P4Testgen's
//! phases when generating tests for the larger programs.
//!
//! The paper's claim: "Solving path constraints in Z3 accounts for less
//! than 10% of the overall CPU time spent" — i.e. the solver *core* is not
//! the bottleneck. Our substrate splits what Z3 does internally into two
//! visible parts: CNF encoding (bit-blasting) and the CDCL search. We
//! report both views: the strict one (encoding + search, which has no Z3
//! analogue because Z3 hides its encoding) and the core-search one (the
//! direct analogue of the paper's "time spent in Z3").

use p4t_targets::{Tofino, V1Model};
use p4testgen_core::{PhaseStats, Testgen, TestgenConfig};
use std::time::Duration;

struct Run {
    name: &'static str,
    tests: u64,
    phases: PhaseStats,
    solve_time: Duration,
    sat_time: Duration,
}

fn run_v1(name: &'static str, src: &str, cap: u64) -> Run {
    let mut config = TestgenConfig::default();
    config.max_tests = cap;
    let mut tg = Testgen::new(name, src, V1Model::new(), config).unwrap();
    let s = tg.run(|_| true);
    let (solve, sat, _) = tg.solver_stats();
    Run { name, tests: s.tests, phases: s.phases, solve_time: solve, sat_time: sat }
}

fn run_tna(name: &'static str, src: &str, cap: u64) -> Run {
    let mut config = TestgenConfig::default();
    config.max_tests = cap;
    let mut tg = Testgen::new(name, src, Tofino::tna(), config).unwrap();
    let s = tg.run(|_| true);
    let (solve, sat, _) = tg.solver_stats();
    Run { name, tests: s.tests, phases: s.phases, solve_time: solve, sat_time: sat }
}

fn main() {
    let runs = vec![
        run_v1("middleblock_sim", &p4t_corpus::MIDDLEBLOCK_SIM, 0),
        run_v1("up4_sim", &p4t_corpus::UP4_SIM, 0),
        run_tna("switch_sim", &p4t_corpus::SWITCH_SIM_TNA, 2000),
    ];
    let mut total = PhaseStats::default();
    let mut sat_core = Duration::ZERO;
    let mut encode = Duration::ZERO;
    let mut tests = 0u64;
    for r in &runs {
        println!(
            "{}: {} tests, stepping {:?}, solving {:?} (encoding {:?} + SAT search {:?}), emission {:?}, total {:?}",
            r.name,
            r.tests,
            r.phases.stepping,
            r.phases.solving,
            r.solve_time.saturating_sub(r.sat_time),
            r.sat_time,
            r.phases.emission,
            r.phases.total
        );
        total.stepping += r.phases.stepping;
        total.solving += r.phases.solving;
        total.emission += r.phases.emission;
        total.total += r.phases.total;
        sat_core += r.sat_time;
        encode += r.solve_time.saturating_sub(r.sat_time);
        tests += r.tests;
    }
    let t = total.total.as_secs_f64().max(1e-9);
    let pct = |d: Duration| 100.0 * d.as_secs_f64() / t;
    let other = total
        .total
        .saturating_sub(total.stepping)
        .saturating_sub(total.solving)
        .saturating_sub(total.emission);
    println!();
    println!("Fig 7: Average CPU time spent in P4Testgen (reproduction, {tests} tests)");
    println!("  program interpretation (stepping)   : {:5.1}%", pct(total.stepping));
    println!("  constraint encoding (bit-blasting)  : {:5.1}%", pct(encode));
    println!("  SAT search (the \"Z3\" analogue)      : {:5.1}%", pct(sat_core));
    println!("  test emission                       : {:5.1}%", pct(total.emission));
    println!("  other (scheduling, bookkeeping)     : {:5.1}%", pct(other));
    println!();
    println!(
        "paper claim (solver core < 10% of CPU time): measured {:.1}% -> {}",
        pct(sat_core),
        if pct(sat_core) < 10.0 { "HOLDS" } else { "DOES NOT HOLD" }
    );
    println!(
        "strict view (encoding + search): {:.1}% — no paper analogue; Z3's own\nencoding time is hidden inside its <10%. See EXPERIMENTS.md.",
        pct(encode) + pct(sat_core)
    );
}
