//! Ablation study of p4testgen's design choices (DESIGN.md items):
//!
//! 1. **Path-selection strategy** (§5.1.2: continuations make heuristics
//!    pluggable; §6: DFS is the default): tests needed to reach full
//!    statement coverage under DFS vs BFS vs random backtracking.
//! 2. **Eager infeasible-path pruning** (§6: "P4Testgen prunes
//!    unsatisfiable paths"): solver checks and wall time with pruning at
//!    fork time vs only at test emission.
//! 3. **Taint-aware entry synthesis** (§5.3): number of generated tests
//!    with the wildcard-ternary mitigation vs dropping tainted-key tables
//!    entirely (approximated by counting tests whose entries use wildcards).

use p4t_targets::V1Model;
use p4testgen_core::{Strategy, Testgen, TestgenConfig};
use std::time::Instant;

fn tests_to_full_coverage(src: &str, strategy: Strategy, seed: u64) -> (u64, u64) {
    let mut config = TestgenConfig::default();
    config.strategy = strategy;
    config.seed = seed;
    config.stop_at_full_coverage = true;
    let mut tg = Testgen::new("ablation", src, V1Model::new(), config).unwrap();
    let summary = tg.run(|_| true);
    (summary.tests, summary.paths_explored)
}

fn pruning_run(src: &str, eager: bool) -> (u64, u64, u64, f64) {
    let mut config = TestgenConfig::default();
    config.eager_pruning = eager;
    let t0 = Instant::now();
    let mut tg = Testgen::new("ablation", src, V1Model::new(), config).unwrap();
    let summary = tg.run(|_| true);
    (summary.tests, summary.paths_explored, summary.solver_checks, t0.elapsed().as_secs_f64())
}

fn main() {
    let mb = &*p4t_corpus::MIDDLEBLOCK_SIM;

    println!("Ablation 1: tests to reach full statement coverage (middleblock_sim)");
    println!("| Strategy          | Tests | Paths explored |");
    println!("|-------------------|-------|----------------|");
    for (name, strat) in [
        ("DFS (default)", Strategy::Dfs),
        ("BFS", Strategy::Bfs),
        ("Random backtrack", Strategy::RandomBacktrack),
        ("Coverage-first", Strategy::CoverageFirst),
    ] {
        let (tests, paths) = tests_to_full_coverage(mb, strat, 1);
        println!("| {name:17} | {tests:5} | {paths:14} |");
    }

    println!();
    println!("Ablation 2: eager vs lazy infeasible-path pruning (middleblock_sim)");
    println!("| Pruning | Tests | Paths | Solver checks | Time |");
    println!("|---------|-------|-------|---------------|------|");
    for (name, eager) in [("eager", true), ("lazy", false)] {
        let (tests, paths, checks, secs) = pruning_run(mb, eager);
        println!("| {name:7} | {tests:5} | {paths:5} | {checks:13} | {secs:.2}s |");
    }

    println!();
    println!("Ablation 3: taint-aware ternary wildcarding (tofino_quirks-style)");
    // A tna program keying a ternary table on tainted intrinsic metadata:
    // with the mitigation, entries are wildcarded (tests still generated);
    // without it (exact match kind), synthesis is skipped entirely.
    let base = r#"
header tofino_md_t { bit<64> pad; }
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
struct headers_t { tofino_md_t tofino_md; ethernet_t eth; }
struct meta_t { bit<8> x; }
parser IPrs(packet_in pkt, out headers_t hdr, out meta_t meta, out ingress_intrinsic_metadata_t ig_intr_md) {
    state start { pkt.extract(hdr.tofino_md); pkt.extract(hdr.eth); transition accept; }
}
control Ing(inout headers_t hdr, inout meta_t meta,
            in ingress_intrinsic_metadata_t ig_intr_md,
            in ingress_intrinsic_metadata_from_parser_t ig_prsr_md,
            inout ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md,
            inout ingress_intrinsic_metadata_for_tm_t ig_tm_md) {
    action fwd(bit<9> p) { ig_tm_md.ucast_egress_port = p; }
    action nop() { ig_tm_md.ucast_egress_port = 9w1; }
    table t {
        key = { hdr.tofino_md.pad: MATCHKIND @name("pad"); }
        actions = { fwd; nop; }
        default_action = nop();
    }
    apply { t.apply(); }
}
control IDep(packet_out pkt, inout headers_t hdr, in ingress_intrinsic_metadata_for_deparser_t ig_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
parser EPrs(packet_in pkt, out headers_t hdr, out meta_t emeta, out egress_intrinsic_metadata_t eg_intr_md) {
    state start { pkt.extract(hdr.eth); transition accept; }
}
control Egr(inout headers_t hdr, inout meta_t emeta,
            in egress_intrinsic_metadata_t eg_intr_md,
            in egress_intrinsic_metadata_from_parser_t eg_prsr_md,
            inout egress_intrinsic_metadata_for_deparser_t eg_dprsr_md,
            inout egress_intrinsic_metadata_for_output_port_t eg_oport_md) {
    apply { }
}
control EDep(packet_out pkt, inout headers_t hdr, in egress_intrinsic_metadata_for_deparser_t eg_dprsr_md) {
    apply { pkt.emit(hdr.eth); }
}
Pipeline(IPrs(), Ing(), IDep(), EPrs(), Egr(), EDep()) main;
"#;
    println!("| Key match kind | Tests | Tests with entries | Action coverage |");
    println!("|----------------|-------|--------------------|-----------------|");
    for kind in ["ternary", "exact"] {
        let src = base.replace("MATCHKIND", kind);
        let mut tg = Testgen::new(
            "taint_ablation",
            &src,
            p4t_targets::Tofino::tna(),
            TestgenConfig::default(),
        )
        .unwrap();
        let mut with_entries = 0u64;
        let mut fwd_covered = false;
        let summary = tg.run(|t| {
            if !t.entries.is_empty() {
                with_entries += 1;
            }
            if t.trace.iter().any(|l| l.contains("-> fwd")) {
                fwd_covered = true;
            }
            true
        });
        println!(
            "| {kind:14} | {:5} | {with_entries:18} | fwd reachable: {fwd_covered} |",
            summary.tests
        );
    }
    println!();
    println!("(ternary keys on tainted data are wildcarded — the §5.3 mitigation —");
    println!(" so the fwd action stays reachable; exact keys cannot be wildcarded");
    println!(" and the synthesized-entry path is dropped to avoid flaky tests)");
}
