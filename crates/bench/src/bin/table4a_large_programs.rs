//! Table 4a reproduction: exhaustive test generation for the three large
//! programs — valid tests, wall time, and statement coverage.
//!
//! The paper's numbers come from the much larger proprietary programs
//! (middleblock.p4 ≈238k tests/13h, up4.p4 ≈34k/2h, switch.p4 >1M); our
//! analogues are smaller, so absolute counts differ. The reproduction
//! targets the *shape*: switch ≫ middleblock > up4 in path count, coverage
//! ordering middleblock ≥ up4 > switch (when switch generation is capped).

use p4t_targets::{Tofino, V1Model};
use p4testgen_core::{Testgen, TestgenConfig};
use std::time::Instant;

struct Row {
    program: &'static str,
    arch: &'static str,
    tests: u64,
    time_s: f64,
    coverage: f64,
    capped: bool,
}

fn run_v1(name: &'static str, src: &str, cap: u64) -> Row {
    let mut config = TestgenConfig::default();
    config.max_tests = cap;
    let t0 = Instant::now();
    let mut tg = Testgen::new(name, src, V1Model::new(), config).unwrap();
    let summary = tg.run(|_| true);
    Row {
        program: name,
        arch: "v1model",
        tests: summary.tests,
        time_s: t0.elapsed().as_secs_f64(),
        coverage: summary.coverage.percent,
        capped: cap > 0 && summary.tests >= cap,
    }
}

fn run_tna(name: &'static str, src: &str, cap: u64) -> Row {
    let mut config = TestgenConfig::default();
    config.max_tests = cap;
    let t0 = Instant::now();
    let mut tg = Testgen::new(name, src, Tofino::tna(), config).unwrap();
    let summary = tg.run(|_| true);
    Row {
        program: name,
        arch: "tna",
        tests: summary.tests,
        time_s: t0.elapsed().as_secs_f64(),
        coverage: summary.coverage.percent,
        capped: cap > 0 && summary.tests >= cap,
    }
}

fn main() {
    // switch_sim is capped the way the paper caps switch.p4 ("ceasing
    // generation at the millionth test" — ours at the 100th of ~400,
    // which is what depresses its coverage number, as in the paper).
    let rows = vec![
        run_v1("middleblock_sim", &p4t_corpus::MIDDLEBLOCK_SIM, 0),
        run_v1("up4_sim", &p4t_corpus::UP4_SIM, 0),
        run_tna("switch_sim", &p4t_corpus::SWITCH_SIM_TNA, 100),
    ];
    // Exhaustive switch run for the path-dominance shape check (the paper
    // never finishes switch.p4; our analogue is small enough to exhaust).
    let sw_exhaustive = run_tna("switch_sim", &p4t_corpus::SWITCH_SIM_TNA, 0);
    println!("Table 4a: P4Testgen statistics for large P4 programs (reproduction)");
    println!("| P4 program      | Arch    | Valid tests | Time    | Stmt. cov. |");
    println!("|-----------------|---------|-------------|---------|------------|");
    for r in &rows {
        println!(
            "| {:15} | {:7} | {:>8}{} | {:6.2}s | {:9.1}% |",
            r.program,
            r.arch,
            r.tests,
            if r.capped { "+" } else { " " },
            r.time_s,
            r.coverage
        );
    }
    println!();
    println!("(paper: middleblock ~238k/13h/100%, up4 ~34k/2h/95%, switch >1M/N-A/41%;");
    println!(" our analogues are smaller — the orderings are the reproduction target)");
    // Shape assertions (reported, not fatal).
    let mb = &rows[0];
    let up4 = &rows[1];
    let sw = &rows[2];
    let _ = sw.tests;
    println!("\nshape checks:");
    println!(
        "  middleblock tests > up4 tests: {} ({} > {})",
        mb.tests > up4.tests,
        mb.tests,
        up4.tests
    );
    println!(
        "  switch paths dominate (exhaustive): {} ({} vs {})",
        sw_exhaustive.tests > mb.tests,
        sw_exhaustive.tests,
        mb.tests
    );
    println!(
        "  middleblock coverage 100%: {} ({:.1}%)",
        (mb.coverage - 100.0).abs() < 1e-9,
        mb.coverage
    );
    println!(
        "  switch coverage below middleblock (capped run): {} ({:.1}% < {:.1}%)",
        sw.coverage <= mb.coverage,
        sw.coverage,
        mb.coverage
    );
}
