//! Parallel-scaling measurement for the exploration engine: runs fork-heavy
//! corpus programs at 1/2/4/8 workers and writes `BENCH_testgen.json` with
//! wall-clock times and speedups relative to the sequential run.
//!
//! Usage: `bench_testgen_json [OUT_PATH]` (default `BENCH_testgen.json`).
//! Build with `--release`; debug-build timings are not meaningful.

use p4t_targets::V1Model;
use p4testgen_core::{Testgen, TestgenConfig};
use serde::Serialize;
use std::time::Instant;

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

#[derive(Serialize)]
struct Doc {
    benchmark: &'static str,
    host_cpus: usize,
    reps_per_point: usize,
    metric: &'static str,
    note: &'static str,
    results: Vec<ProgramResult>,
}

#[derive(Serialize)]
struct ProgramResult {
    program: &'static str,
    runs: Vec<RunPoint>,
}

#[derive(Serialize)]
struct RunPoint {
    jobs: usize,
    wall_seconds: f64,
    tests: u64,
    paths: u64,
    speedup_vs_jobs1: f64,
}

struct Workload {
    name: &'static str,
    src: String,
}

fn measure(w: &Workload, jobs: usize) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut tests = 0;
    let mut paths = 0;
    for _ in 0..REPS {
        let mut config = TestgenConfig::default();
        config.jobs = jobs;
        let mut tg = Testgen::new(w.name, &w.src, V1Model::new(), config).unwrap();
        let t0 = Instant::now();
        let s = tg.run(|_| true);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        tests = s.tests;
        paths = s.paths_explored;
    }
    (best, tests, paths)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_testgen.json".to_string());
    let workloads = [
        Workload { name: "synthetic_4x3", src: p4t_corpus::generate_synthetic(4, 3) },
        Workload { name: "synthetic_5x3", src: p4t_corpus::generate_synthetic(5, 3) },
        Workload { name: "up4_sim", src: p4t_corpus::UP4_SIM.clone() },
    ];
    let mut results = Vec::new();
    for w in &workloads {
        let mut baseline = 0.0f64;
        let mut runs = Vec::new();
        for jobs in JOB_COUNTS {
            let (secs, tests, paths) = measure(w, jobs);
            if jobs == 1 {
                baseline = secs;
            }
            let speedup = baseline / secs.max(1e-9);
            eprintln!(
                "{}: jobs={jobs} {secs:.3}s ({tests} tests, {paths} paths, {speedup:.2}x)",
                w.name
            );
            runs.push(RunPoint {
                jobs,
                wall_seconds: secs,
                tests,
                paths,
                speedup_vs_jobs1: speedup,
            });
        }
        results.push(ProgramResult { program: w.name, runs });
    }
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = Doc {
        benchmark: "parallel path exploration scaling",
        host_cpus,
        reps_per_point: REPS,
        metric: "best-of-reps wall-clock seconds for a full generation run",
        note: "exploration is CPU-bound, so the attainable speedup is bounded by \
               host_cpus; on a single-core host the interesting number is the \
               overhead of running the worker pool at all (speedup ~1.0 means \
               the pool adds no serialization cost)",
        results,
    };
    let rendered = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_testgen.json");
    eprintln!("wrote {out_path}");
}
