//! Solver-mode and parallel-scaling measurement for the exploration engine:
//! runs each bench program in both `--solver-mode` values (fresh-per-check
//! vs the warm incremental spine core) at 1/4/8 workers and writes
//! `BENCH_testgen.json` with wall-clock times, per-mode speedups, and the
//! engine counters that explain them (conflicts per check, solve time,
//! spine-root reuse, blast-cache hits).
//!
//! Usage: `bench_testgen_json [OUT_PATH]` (default `BENCH_testgen.json`).
//! Build with `--release`; debug-build timings are not meaningful.

use p4t_obs::Registry;
use p4t_targets::V1Model;
use p4testgen_core::{SolverMode, Testgen, TestgenConfig};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const JOB_COUNTS: [usize; 3] = [1, 4, 8];
const MODES: [SolverMode; 2] = [SolverMode::Fresh, SolverMode::Incremental];
const REPS: usize = 3;

#[derive(Serialize)]
struct Doc {
    benchmark: &'static str,
    host_cpus: usize,
    reps_per_point: usize,
    metric: &'static str,
    note: &'static str,
    results: Vec<ProgramResult>,
}

#[derive(Serialize)]
struct ProgramResult {
    program: &'static str,
    /// jobs=1 fresh wall-clock divided by jobs=1 incremental wall-clock:
    /// the single-core win of the warm spine core on this program.
    incremental_speedup_vs_fresh_jobs1: f64,
    modes: Vec<ModeResult>,
}

#[derive(Serialize)]
struct ModeResult {
    mode: &'static str,
    runs: Vec<RunPoint>,
}

#[derive(Serialize)]
struct RunPoint {
    jobs: usize,
    wall_seconds: f64,
    tests: u64,
    paths: u64,
    speedup_vs_jobs1: f64,
    /// Engine internals folded from the metrics registry of the run's last
    /// repetition (counts are deterministic across reps; only timing and
    /// contention vary).
    engine: EnginePoint,
}

#[derive(Default, Serialize)]
struct EnginePoint {
    solver_checks: u64,
    solve_seconds: f64,
    sat_conflicts: u64,
    conflicts_per_check: f64,
    sat_propagations: u64,
    memo_lookups: u64,
    memo_hits: u64,
    warm_checks: u64,
    fresh_fallbacks: u64,
    warm_rebuilds: u64,
    spine_roots_reused: u64,
    spine_roots_blasted: u64,
    blast_cache_hits: u64,
    blast_cache_misses: u64,
    learnt_exported: u64,
    learnt_imported: u64,
    pool_terms: u64,
    worker_steals: u64,
    worker_busy_ns: u64,
    worker_idle_ns: u64,
}

struct Workload {
    name: &'static str,
    src: String,
}

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.counter_value(name, &[]).unwrap_or(0)
}

fn counter_l(reg: &Registry, name: &str, labels: &[(&str, &str)]) -> u64 {
    reg.counter_value(name, labels).unwrap_or(0)
}

fn measure(w: &Workload, mode: SolverMode, jobs: usize) -> (f64, u64, u64, EnginePoint) {
    let mut best = f64::INFINITY;
    let mut tests = 0;
    let mut paths = 0;
    let mut engine = EnginePoint::default();
    for _ in 0..REPS {
        let mut config = TestgenConfig::default();
        config.jobs = jobs;
        config.solver_mode = mode;
        let reg = Arc::new(Registry::new());
        config.obs.metrics = Some(reg.clone());
        let mut tg = Testgen::new(w.name, &w.src, V1Model::new(), config).unwrap();
        let t0 = Instant::now();
        let s = tg.run(|_| true);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        tests = s.tests;
        paths = s.paths_explored;
        let checks = counter(&reg, "p4testgen_solver_checks_total");
        let conflicts = counter(&reg, "p4testgen_sat_conflicts_total");
        engine = EnginePoint {
            solver_checks: checks,
            solve_seconds: counter(&reg, "p4testgen_solver_solve_ns_total") as f64 / 1e9,
            sat_conflicts: conflicts,
            conflicts_per_check: conflicts as f64 / (checks.max(1)) as f64,
            sat_propagations: counter(&reg, "p4testgen_sat_propagations_total"),
            memo_lookups: counter(&reg, "p4testgen_memo_lookups_total"),
            memo_hits: counter(&reg, "p4testgen_memo_hits_total"),
            warm_checks: counter_l(
                &reg,
                "p4testgen_feasibility_checks_total",
                &[("path", "warm")],
            ),
            fresh_fallbacks: counter_l(
                &reg,
                "p4testgen_feasibility_checks_total",
                &[("path", "fresh_fallback")],
            ),
            warm_rebuilds: counter(&reg, "p4testgen_warm_rebuilds_total"),
            spine_roots_reused: counter_l(
                &reg,
                "p4testgen_spine_roots_total",
                &[("kind", "reused")],
            ),
            spine_roots_blasted: counter_l(
                &reg,
                "p4testgen_spine_roots_total",
                &[("kind", "blasted")],
            ),
            blast_cache_hits: counter_l(
                &reg,
                "p4testgen_blast_cache_total",
                &[("outcome", "hit")],
            ),
            blast_cache_misses: counter_l(
                &reg,
                "p4testgen_blast_cache_total",
                &[("outcome", "miss")],
            ),
            learnt_exported: counter_l(
                &reg,
                "p4testgen_learnt_exchange_total",
                &[("dir", "exported")],
            ),
            learnt_imported: counter_l(
                &reg,
                "p4testgen_learnt_exchange_total",
                &[("dir", "imported")],
            ),
            pool_terms: reg.gauge_value("p4testgen_pool_terms", &[]).unwrap_or(0),
            worker_steals: counter(&reg, "p4testgen_worker_steals_total"),
            worker_busy_ns: counter(&reg, "p4testgen_worker_busy_ns_total"),
            worker_idle_ns: counter(&reg, "p4testgen_worker_idle_ns_total"),
        };
    }
    (best, tests, paths, engine)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_testgen.json".to_string());
    let workloads = [
        Workload { name: "synthetic_4x3", src: p4t_corpus::generate_synthetic(4, 3) },
        Workload { name: "synthetic_5x3", src: p4t_corpus::generate_synthetic(5, 3) },
        Workload { name: "up4_sim", src: p4t_corpus::UP4_SIM.clone() },
        Workload { name: "parser_deep_12x6", src: p4t_corpus::generate_parser_deep(12, 6) },
        Workload { name: "parser_deep_20x8", src: p4t_corpus::generate_parser_deep(20, 8) },
    ];
    let mut results = Vec::new();
    for w in &workloads {
        let mut mode_results = Vec::new();
        let mut jobs1_by_mode = [0.0f64; 2];
        for (mi, &mode) in MODES.iter().enumerate() {
            let mut baseline = 0.0f64;
            let mut runs = Vec::new();
            for jobs in JOB_COUNTS {
                let (secs, tests, paths, engine) = measure(w, mode, jobs);
                if jobs == 1 {
                    baseline = secs;
                    jobs1_by_mode[mi] = secs;
                }
                let speedup = baseline / secs.max(1e-9);
                eprintln!(
                    "{} [{}]: jobs={jobs} {secs:.3}s ({tests} tests, {paths} paths, \
                     {speedup:.2}x, {} checks, {:.2} conflicts/check, {} roots reused)",
                    w.name,
                    mode.as_str(),
                    engine.solver_checks,
                    engine.conflicts_per_check,
                    engine.spine_roots_reused
                );
                runs.push(RunPoint {
                    jobs,
                    wall_seconds: secs,
                    tests,
                    paths,
                    speedup_vs_jobs1: speedup,
                    engine,
                });
            }
            mode_results.push(ModeResult { mode: mode.as_str(), runs });
        }
        let ratio = jobs1_by_mode[0] / jobs1_by_mode[1].max(1e-9);
        eprintln!("{}: incremental is {ratio:.2}x vs fresh at jobs=1", w.name);
        results.push(ProgramResult {
            program: w.name,
            incremental_speedup_vs_fresh_jobs1: ratio,
            modes: mode_results,
        });
    }
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = Doc {
        benchmark: "solver-mode comparison and parallel scaling",
        host_cpus,
        reps_per_point: REPS,
        metric: "best-of-reps wall-clock seconds for a full generation run",
        note: "both solver modes emit byte-identical suites (tests/determinism.rs \
               checks this at the same job counts); the comparison is pure cost. \
               Exploration is CPU-bound, so the attainable parallel speedup is \
               bounded by host_cpus; on a single-core host the interesting numbers \
               are the fresh-vs-incremental ratio at jobs=1 and the engine \
               counters (spine roots reused vs blasted, conflicts per check, \
               solve seconds) that explain it",
        results,
    };
    let rendered = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_testgen.json");
    eprintln!("wrote {out_path}");
}
