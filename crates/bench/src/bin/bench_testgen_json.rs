//! Parallel-scaling measurement for the exploration engine: runs fork-heavy
//! corpus programs at 1/2/4/8 workers and writes `BENCH_testgen.json` with
//! wall-clock times and speedups relative to the sequential run.
//!
//! Usage: `bench_testgen_json [OUT_PATH]` (default `BENCH_testgen.json`).
//! Build with `--release`; debug-build timings are not meaningful.

use p4t_obs::Registry;
use p4t_targets::V1Model;
use p4testgen_core::{Testgen, TestgenConfig};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

#[derive(Serialize)]
struct Doc {
    benchmark: &'static str,
    host_cpus: usize,
    reps_per_point: usize,
    metric: &'static str,
    note: &'static str,
    results: Vec<ProgramResult>,
}

#[derive(Serialize)]
struct ProgramResult {
    program: &'static str,
    runs: Vec<RunPoint>,
}

#[derive(Serialize)]
struct RunPoint {
    jobs: usize,
    wall_seconds: f64,
    tests: u64,
    paths: u64,
    speedup_vs_jobs1: f64,
    /// Engine internals folded from the metrics registry of the run's last
    /// repetition (counts are deterministic across reps; only timing and
    /// contention vary).
    engine: EnginePoint,
}

#[derive(Default, Serialize)]
struct EnginePoint {
    solver_checks: u64,
    sat_conflicts: u64,
    sat_propagations: u64,
    memo_lookups: u64,
    memo_hits: u64,
    pool_terms: u64,
    pool_intern_contention: u64,
    worker_steals: u64,
    worker_busy_ns: u64,
    worker_idle_ns: u64,
}

struct Workload {
    name: &'static str,
    src: String,
}

fn counter(reg: &Registry, name: &str) -> u64 {
    reg.counter_value(name, &[]).unwrap_or(0)
}

fn measure(w: &Workload, jobs: usize) -> (f64, u64, u64, EnginePoint) {
    let mut best = f64::INFINITY;
    let mut tests = 0;
    let mut paths = 0;
    let mut engine = EnginePoint::default();
    for _ in 0..REPS {
        let mut config = TestgenConfig::default();
        config.jobs = jobs;
        let reg = Arc::new(Registry::new());
        config.obs.metrics = Some(reg.clone());
        let mut tg = Testgen::new(w.name, &w.src, V1Model::new(), config).unwrap();
        let t0 = Instant::now();
        let s = tg.run(|_| true);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        tests = s.tests;
        paths = s.paths_explored;
        engine = EnginePoint {
            solver_checks: counter(&reg, "p4testgen_solver_checks_total"),
            sat_conflicts: counter(&reg, "p4testgen_sat_conflicts_total"),
            sat_propagations: counter(&reg, "p4testgen_sat_propagations_total"),
            memo_lookups: counter(&reg, "p4testgen_memo_lookups_total"),
            memo_hits: counter(&reg, "p4testgen_memo_hits_total"),
            pool_terms: reg.gauge_value("p4testgen_pool_terms", &[]).unwrap_or(0),
            pool_intern_contention: reg
                .gauge_value("p4testgen_pool_intern_contention", &[])
                .unwrap_or(0),
            worker_steals: counter(&reg, "p4testgen_worker_steals_total"),
            worker_busy_ns: counter(&reg, "p4testgen_worker_busy_ns_total"),
            worker_idle_ns: counter(&reg, "p4testgen_worker_idle_ns_total"),
        };
    }
    (best, tests, paths, engine)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_testgen.json".to_string());
    let workloads = [
        Workload { name: "synthetic_4x3", src: p4t_corpus::generate_synthetic(4, 3) },
        Workload { name: "synthetic_5x3", src: p4t_corpus::generate_synthetic(5, 3) },
        Workload { name: "up4_sim", src: p4t_corpus::UP4_SIM.clone() },
    ];
    let mut results = Vec::new();
    for w in &workloads {
        let mut baseline = 0.0f64;
        let mut runs = Vec::new();
        for jobs in JOB_COUNTS {
            let (secs, tests, paths, engine) = measure(w, jobs);
            if jobs == 1 {
                baseline = secs;
            }
            let speedup = baseline / secs.max(1e-9);
            eprintln!(
                "{}: jobs={jobs} {secs:.3}s ({tests} tests, {paths} paths, {speedup:.2}x, \
                 {} solver checks, {} steals)",
                w.name, engine.solver_checks, engine.worker_steals
            );
            runs.push(RunPoint {
                jobs,
                wall_seconds: secs,
                tests,
                paths,
                speedup_vs_jobs1: speedup,
                engine,
            });
        }
        results.push(ProgramResult { program: w.name, runs });
    }
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = Doc {
        benchmark: "parallel path exploration scaling",
        host_cpus,
        reps_per_point: REPS,
        metric: "best-of-reps wall-clock seconds for a full generation run",
        note: "exploration is CPU-bound, so the attainable speedup is bounded by \
               host_cpus; on a single-core host the interesting number is the \
               overhead of running the worker pool at all (speedup ~1.0 means \
               the pool adds no serialization cost)",
        results,
    };
    let rendered = serde_json::to_string_pretty(&doc).expect("render json");
    std::fs::write(&out_path, rendered + "\n").expect("write BENCH_testgen.json");
    eprintln!("wrote {out_path}");
}
