//! Microbenchmarks for the SMT substrate: bitvector arithmetic, bit-blasting,
//! and SAT solving on constraint shapes representative of packet programs.

use criterion::{criterion_group, criterion_main, Criterion};
use p4t_smt::{BitVec, CheckResult, Solver, TermPool};
use std::hint::black_box;

fn bench_bitvec(c: &mut Criterion) {
    let a = BitVec::from_u128(128, 0xDEAD_BEEF_CAFE_BABE_0123_4567u128);
    let b = BitVec::from_u128(128, 0x1111_2222_3333_4444_5555_6666u128);
    c.bench_function("bitvec/add128", |bench| {
        bench.iter(|| black_box(black_box(&a).add(black_box(&b))))
    });
    c.bench_function("bitvec/mul128", |bench| {
        bench.iter(|| black_box(black_box(&a).mul(black_box(&b))))
    });
    c.bench_function("bitvec/udiv128", |bench| {
        bench.iter(|| black_box(black_box(&a).udiv(black_box(&b))))
    });
}

/// A path-constraint shape typical of parser select chains: equalities over
/// packet slices plus a table-key equality.
fn parser_path_check(width_headers: usize) -> CheckResult {
    let pool = TermPool::new();
    let mut solver = Solver::new();
    let pkt = pool.fresh_var("pkt", 112 + width_headers * 32);
    let ethertype = pool.extract(112 + width_headers * 32 - 97, 112 + width_headers * 32 - 112, pkt);
    let c800 = pool.const_u128(16, 0x0800);
    let is_ip = pool.eq(ethertype, c800);
    solver.assert(&pool, is_ip);
    for i in 0..width_headers {
        let field = pool.extract(i * 32 + 31, i * 32, pkt);
        let key = pool.fresh_var(format!("key{i}"), 32);
        let eq = pool.eq(field, key);
        solver.assert(&pool, eq);
    }
    solver.check(&pool)
}

fn bench_solver(c: &mut Criterion) {
    c.bench_function("solver/parser_path_2_headers", |b| {
        b.iter(|| black_box(parser_path_check(2)))
    });
    c.bench_function("solver/parser_path_8_headers", |b| {
        b.iter(|| black_box(parser_path_check(8)))
    });
    // Checksum-style: equality binding a 16-bit var against a sum chain.
    c.bench_function("solver/arith_chain", |b| {
        b.iter(|| {
            let pool = TermPool::new();
            let mut solver = Solver::new();
            let mut acc = pool.const_u128(16, 0);
            for i in 0..8 {
                let w = pool.fresh_var(format!("w{i}"), 16);
                acc = pool.add(acc, w);
            }
            let target = pool.const_u128(16, 0xBEEF);
            let eq = pool.eq(acc, target);
            solver.assert(&pool, eq);
            black_box(solver.check(&pool))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bitvec, bench_solver
}
criterion_main!(benches);
