//! End-to-end generation benchmarks: one per evaluation artifact.
//!
//! * `table4a/*` — full-program generation (the Table 4a rows).
//! * `table4b/*` — middleblock under each precondition (the Table 4b rows).
//! * `fig7/throughput` — paths/second on the corpus (the Fig. 7 substrate).
//! * `fig1/examples` — the paper's worked examples.
//! * `parallel/*` — the same fork-heavy program at 1/2/4/8 exploration
//!   workers (wall-clock scaling of the work-stealing pool).

use criterion::{criterion_group, criterion_main, Criterion};
use p4t_targets::{Tofino, V1Model};
use p4testgen_core::{Preconditions, Testgen, TestgenConfig};
use std::hint::black_box;

fn gen_v1(name: &str, src: &str, pre: Preconditions, cap: u64) -> u64 {
    let mut config = TestgenConfig::default();
    config.preconditions = pre;
    config.max_tests = cap;
    let mut tg = Testgen::new(name, src, V1Model::new(), config).unwrap();
    tg.run(|_| true).tests
}

fn gen_tna(name: &str, src: &str, cap: u64) -> u64 {
    let mut config = TestgenConfig::default();
    config.max_tests = cap;
    let mut tg = Testgen::new(name, src, Tofino::tna(), config).unwrap();
    tg.run(|_| true).tests
}

fn bench_table4a(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4a");
    g.sample_size(10);
    g.bench_function("middleblock_sim", |b| {
        b.iter(|| black_box(gen_v1("mb", &p4t_corpus::MIDDLEBLOCK_SIM, Preconditions::none(), 0)))
    });
    g.bench_function("up4_sim", |b| {
        b.iter(|| black_box(gen_v1("up4", &p4t_corpus::UP4_SIM, Preconditions::none(), 0)))
    });
    g.bench_function("switch_sim_capped100", |b| {
        b.iter(|| black_box(gen_tna("sw", &p4t_corpus::SWITCH_SIM_TNA, 100)))
    });
    g.finish();
}

fn bench_table4b(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4b");
    g.sample_size(10);
    for (name, pre) in [
        ("none", Preconditions::none()),
        ("fixed_size", Preconditions::with_fixed_packet(1500)),
        ("p4_constraints", Preconditions::with_constraints()),
        ("both", Preconditions::all(1500)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(gen_v1("mb", &p4t_corpus::MIDDLEBLOCK_SIM, pre.clone(), 0))
            })
        });
    }
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.bench_function("fig1a", |b| {
        b.iter(|| black_box(gen_v1("fig1a", p4t_corpus::FIG1A, Preconditions::none(), 0)))
    });
    g.bench_function("fig1b_concolic", |b| {
        b.iter(|| black_box(gen_v1("fig1b", p4t_corpus::FIG1B, Preconditions::none(), 0)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    // Paths/second substrate for Fig. 7: a medium program end to end.
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("corpus_throughput", |b| {
        b.iter(|| {
            let mut total = 0u64;
            total += gen_v1("stack", &p4t_corpus::STACK_PROG, Preconditions::none(), 0);
            total += gen_v1("switchstmt", &p4t_corpus::SWITCH_STMT_PROG, Preconditions::none(), 0);
            black_box(total)
        })
    });
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    // ~4^4 feasible paths of chained-table branching: enough independent
    // subtrees that stealing keeps every worker busy.
    let src = p4t_corpus::generate_synthetic(4, 3);
    let mut g = c.benchmark_group("parallel");
    g.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        g.bench_function(&format!("jobs{jobs}"), |b| {
            b.iter(|| {
                let mut config = TestgenConfig::default();
                config.jobs = jobs;
                let mut tg =
                    Testgen::new("synthetic_4x3", &src, V1Model::new(), config).unwrap();
                black_box(tg.run(|_| true).tests)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_table4a, bench_table4b, bench_fig1, bench_fig7, bench_parallel
}
criterion_main!(benches);
